"""Differential tests for the batched negotiation engine (PR 4).

The contract under test: a batched cycle (request equivalence classes +
shared per-class candidate lists + per-cycle provider memos) is
*assignment-identical* to the naive reference scan — same matches, same
preemptions, same tie-breaks — and, with the event log on, replays the
identical forensic event stream.  The persistent index must likewise be
indistinguishable from a fresh rebuild after any advertise/withdraw
sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd
from repro.matchmaking import (
    Accountant,
    CycleStats,
    Matchmaker,
    ProviderIndex,
    batching_enabled,
    negotiation_cycle,
    set_batching,
)
from repro.obs import event_log


def machine(
    name,
    arch="INTEL",
    memory=64,
    state="Unclaimed",
    current_rank=0.0,
    remote_owner=None,
    constraint='other.Type == "Job"',
    rank='other.Owner == "vip" ? 5 : 0',
):
    ad = ClassAd(
        {"Type": "Machine", "Name": name, "Arch": arch, "Memory": memory, "State": state}
    )
    ad.set_expr("Constraint", constraint)
    ad.set_expr("Rank", rank)
    if state == "Claimed":
        ad["CurrentRank"] = current_rank
        ad["RemoteOwner"] = remote_owner or "someone"
    return ad


def request(owner, job_id, arch="INTEL", memory=32):
    ad = ClassAd(
        {"Type": "Job", "JobId": job_id, "Owner": owner, "Memory": memory, "ReqArch": arch}
    )
    ad.set_expr(
        "Constraint",
        'other.Type == "Machine" && other.Arch == self.ReqArch '
        "&& other.Memory >= self.Memory",
    )
    ad.set_expr("Rank", "other.Memory")
    return ad


def assignment_key(assignments):
    return [
        (
            a.submitter,
            a.request.evaluate("JobId"),
            a.provider.evaluate("Name"),
            a.customer_rank,
            a.provider_rank,
            a.preempts,
        )
        for a in assignments
    ]


def run_cycle(providers, grouped, batch, use_index, accountant=None, allow_preemption=True):
    stats = CycleStats()
    index = ProviderIndex(providers) if use_index else None
    assignments = negotiation_cycle(
        grouped,
        providers,
        accountant=accountant,
        allow_preemption=allow_preemption,
        index=index,
        stats=stats,
        batch=batch,
    )
    return assignments, stats


archs = st.sampled_from(["INTEL", "SPARC"])
memories = st.sampled_from([32, 64, 128])
states = st.sampled_from(["Unclaimed", "Claimed", "Owner"])
owners = st.sampled_from(["alice", "bob", "vip"])

machines_strategy = st.lists(
    st.tuples(archs, memories, states, st.floats(min_value=0, max_value=10)),
    max_size=12,
)
requests_strategy = st.lists(st.tuples(owners, archs, memories), max_size=16)


def build(machine_params, request_params):
    providers = [
        machine(f"m{i}", a, m, state=s, current_rank=r)
        for i, (a, m, s, r) in enumerate(machine_params)
    ]
    grouped = {}
    for i, (owner, arch, memory) in enumerate(request_params):
        grouped.setdefault(owner, []).append(request(owner, i, arch, memory))
    return providers, grouped


class TestBatchedEqualsNaive:
    """The hypothesis differential suite the ISSUE asks for."""

    @given(machines_strategy, requests_strategy, st.booleans(), st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_assignments_identical(
        self, machine_params, request_params, use_index, allow_preemption
    ):
        providers, grouped = build(machine_params, request_params)
        naive, _ = run_cycle(
            providers, grouped, batch=False, use_index=use_index,
            allow_preemption=allow_preemption,
        )
        batched, stats = run_cycle(
            providers, grouped, batch=True, use_index=use_index,
            allow_preemption=allow_preemption,
        )
        assert assignment_key(naive) == assignment_key(batched)
        total = sum(len(reqs) for reqs in grouped.values())
        assert stats.requests_considered == total

    @given(machines_strategy, requests_strategy, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_assignments_identical_under_fair_share(
        self, machine_params, request_params, use_index
    ):
        """Quota corners: uneven usage histories give the submitters
        different pie slices, exercising the quota cutoff + spin-pie
        interaction on both paths."""
        providers, grouped = build(machine_params, request_params)

        def accountant():
            acc = Accountant(half_life=100.0)
            for i, owner in enumerate(sorted(grouped)):
                acc.record(owner)
                for _ in range(i * 2):
                    acc.resource_claimed(owner)
            acc.advance_to(50.0)
            return acc

        naive, _ = run_cycle(
            providers, grouped, batch=False, use_index=use_index, accountant=accountant()
        )
        batched, _ = run_cycle(
            providers, grouped, batch=True, use_index=use_index, accountant=accountant()
        )
        assert assignment_key(naive) == assignment_key(batched)

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=75, deadline=None)
    def test_provider_side_request_reads_split_classes(
        self, machine_params, request_params
    ):
        """Providers that read request attributes the requests never
        mention (here: Owner, via Rank and a Constraint) must still
        match identically — the signature closes over pool-observed
        attributes."""
        providers, grouped = build(machine_params, request_params)
        providers.append(
            machine("picky", memory=256, constraint='other.Owner == "vip"')
        )
        naive, _ = run_cycle(providers, grouped, batch=False, use_index=False)
        batched, _ = run_cycle(providers, grouped, batch=True, use_index=False)
        assert assignment_key(naive) == assignment_key(batched)


class TestEventStreamParity:
    def _events_of(self, providers, grouped, batch, use_index, accountant):
        event_log.reset()
        event_log.enable()
        try:
            run_cycle(
                providers, grouped, batch=batch, use_index=use_index,
                accountant=accountant,
            )
            variable = {"cycle", "batched", "duration_s", "evals_saved",
                        "request_classes", "pairings_saved", "workers", "chunks"}
            return [
                (
                    e.kind,
                    tuple(sorted(
                        (k, v) for k, v in e.fields.items() if k not in variable
                    )),
                )
                for e in event_log.events()
            ]
        finally:
            event_log.disable()
            event_log.reset()

    def test_replayed_stream_matches_naive(self):
        """Every rejection (taken / unavailable / preemption-disabled /
        constraint attribution / rank-not-above-current), every match,
        every preemption and unmatched-job event — in the same order
        with the same fields."""
        providers = [
            machine("m1", memory=128),
            machine(
                "m2", memory=64, state="Claimed", current_rank=5.0,
                remote_owner="alice",
                rank='other.Owner == "bob" ? 10 : 0',
            ),
            machine("m3", memory=256, state="Claimed", current_rank=100.0,
                    remote_owner="bob"),
            machine("m4", memory=32),
            machine("m5", memory=512, state="Owner"),
            machine("picky", memory=96, constraint='other.Owner == "vip"'),
        ]
        grouped = {
            "alice": [request("alice", 1), request("alice", 2),
                      request("alice", 3, memory=48)],
            "bob": [request("bob", 4), request("bob", 5, memory=200)],
            "vip": [request("vip", 6, memory=48), request("vip", 7, memory=48)],
        }
        acc = Accountant(half_life=100.0)
        for owner in ("alice", "bob", "vip"):
            acc.record(owner)
        for _ in range(4):
            acc.resource_claimed("alice")
        acc.advance_to(10.0)
        for use_index in (False, True):
            naive = self._events_of(providers, grouped, False, use_index, acc)
            batched = self._events_of(providers, grouped, True, use_index, acc)
            assert naive == batched

    def test_cycle_end_reports_batching_yield(self):
        providers = [machine(f"m{i}") for i in range(4)]
        grouped = {"alice": [request("alice", i) for i in range(6)]}
        event_log.reset()
        event_log.enable()
        try:
            run_cycle(providers, grouped, batch=True, use_index=False)
            (end,) = [e for e in event_log.events() if e.kind == "cycle.end"]
        finally:
            event_log.disable()
            event_log.reset()
        assert end.fields["request_classes"] == 1
        # 5 repeat members × a 4-provider pool evaluated once
        assert end.fields["pairings_saved"] == 5 * len(providers)


class TestQuotaRounding:
    def test_quota_sum_capped_at_matchable_capacity(self):
        """Regression: max(1, round(share * matchable)) across many
        low-share submitters used to overshoot the pie; quotas must now
        sum to at most the matchable capacity."""
        providers = [machine(f"m{i}") for i in range(3)]
        grouped = {
            f"user{i}": [request(f"user{i}", i)] for i in range(8)
        }
        acc = Accountant(half_life=100.0)
        for owner in grouped:
            acc.record(owner)
        event_log.reset()
        event_log.enable()
        try:
            run_cycle(providers, grouped, batch=False, use_index=False, accountant=acc)
            quotas = [e.fields["quota"] for e in event_log.events()
                      if e.kind == "fairshare.quota"]
        finally:
            event_log.disable()
            event_log.reset()
        assert len(quotas) == 8
        assert sum(quotas) <= len(providers)

    def test_capacity_still_fully_served(self):
        """Zero-quota submitters are back-filled by the spin-pie round,
        so the cap never strands machines."""
        providers = [machine(f"m{i}") for i in range(3)]
        grouped = {f"user{i}": [request(f"user{i}", i)] for i in range(8)}
        acc = Accountant(half_life=100.0)
        for owner in grouped:
            acc.record(owner)
        assignments, _ = run_cycle(
            providers, grouped, batch=True, use_index=False, accountant=acc
        )
        assert len(assignments) == len(providers)


class TestKillSwitch:
    def test_set_batching_toggles(self):
        providers = [machine(f"m{i}") for i in range(3)]
        grouped = {"alice": [request("alice", i) for i in range(4)]}
        original = batching_enabled()
        try:
            set_batching(False)
            _, stats_off = run_cycle(providers, grouped, batch=None, use_index=False)
            set_batching(True)
            _, stats_on = run_cycle(providers, grouped, batch=None, use_index=False)
        finally:
            set_batching(original)
        assert stats_off.request_classes == 0
        assert stats_off.pairings_saved == 0
        assert stats_on.request_classes == 1
        assert stats_on.pairings_saved > 0


# -- persistent index -----------------------------------------------------


def typed_machine(name, typ, memory):
    ad = machine(name, memory=memory)
    ad["Type"] = typ
    return ad


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["advertise", "withdraw"]),
        st.integers(min_value=0, max_value=9),  # name index
        st.sampled_from(["Machine", "Other"]),
        memories,
    ),
    max_size=40,
)


class TestMaintainedIndexEquivalence:
    @given(ops_strategy, st.integers(min_value=0, max_value=2))
    @settings(max_examples=150, deadline=None)
    def test_delta_maintained_equals_rebuilt(self, ops, probe_memory_i):
        """After any advertise/withdraw sequence the persistent index
        yields the same providers, in the same order, and the same
        candidate sets as an index rebuilt from scratch."""
        mm = Matchmaker()
        mm.provider_index()  # force early creation: every op is a delta
        for op, name_i, typ, memory in ops:
            name = f"n{name_i}"
            if op == "advertise":
                mm.advertise(name, typed_machine(name, typ, memory))
            else:
                mm.withdraw(name)
        mindex = mm.provider_index()
        authoritative = mm.ads('Type == "Machine"')
        assert [id(a) for a in mindex.providers()] == [id(a) for a in authoritative]
        probe = request("alice", 0, memory=[32, 64, 128][probe_memory_i])
        fresh = ProviderIndex(authoritative)
        assert [id(a) for a in mindex.index.candidates_for(probe)] == [
            id(a) for a in fresh.candidates_for(probe)
        ]

    def test_steady_state_performs_zero_rebuilds(self):
        """The acceptance criterion: once built, refresh/withdraw/expiry
        traffic is absorbed by deltas — the rebuild counter stays at the
        initial build."""
        mm = Matchmaker()
        for i in range(20):
            mm.advertise(f"m{i}", machine(f"m{i}"))
        grouped = {"alice": [request("alice", 0)]}
        mm.negotiate(grouped, use_index=True)
        mindex = mm.provider_index()
        assert mindex.index.rebuilds == 1
        for _ in range(5):
            for i in range(20):  # periodic re-advertisement, fresh ad objects
                mm.advertise(f"m{i}", machine(f"m{i}"))
            mm.withdraw("m7")
            mm.advertise("m7", machine("m7"))
            mm.negotiate(grouped, use_index=True)
        assert mm.provider_index() is mindex
        assert mindex.index.rebuilds == 1
        assert mindex.index.delta_updates > 0

    def test_member_turned_nonmember_and_back_keeps_naive_order(self):
        """The one delta-unrepresentable case: a stored non-member
        re-advertised as a member must not be appended out of its
        historical dict position — the index is dropped and rebuilt in
        authoritative order instead."""
        mm = Matchmaker()
        mm.advertise("a", typed_machine("a", "Other", 64))
        mm.advertise("b", machine("b"))
        mm.provider_index()
        mm.advertise("a", machine("a"))  # becomes a member mid-stream
        authoritative = mm.ads('Type == "Machine"')
        assert [id(x) for x in mm.provider_index().providers()] == [
            id(x) for x in authoritative
        ]
        names = [x.evaluate("Name") for x in mm.provider_index().providers()]
        assert names == ["a", "b"]

    def test_negotiate_uses_persistent_index(self):
        """use_index=True must produce the same assignments as the naive
        unindexed negotiate, through the maintained index."""
        mm = Matchmaker()
        for i in range(10):
            mm.advertise(f"m{i}", machine(f"m{i}", memory=[32, 64, 128][i % 3]))
        grouped = {"alice": [request("alice", i, memory=64) for i in range(5)]}
        plain = mm.negotiate(grouped)
        indexed = mm.negotiate(grouped, use_index=True)
        assert assignment_key(plain) == assignment_key(indexed)


class TestAdsFastPath:
    def test_unconstrained_ads_returns_fresh_list(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1"))
        ads = mm.ads()
        assert len(ads) == 1
        ads.append(machine("mx"))  # caller-owned copy: store unaffected
        assert len(mm.ads()) == 1
