"""Unit tests for fair-share accounting (S8)."""

import math

import pytest

from repro.matchmaking import MINIMUM_PRIORITY, Accountant


class TestBasics:
    def test_new_submitter_starts_at_floor(self):
        acc = Accountant(half_life=100)
        assert acc.effective_priority("alice") == MINIMUM_PRIORITY

    def test_priority_factor_multiplies(self):
        acc = Accountant(half_life=100)
        acc.set_priority_factor("alice", 10.0)
        assert acc.effective_priority("alice") == MINIMUM_PRIORITY * 10.0

    def test_invalid_factor_rejected(self):
        acc = Accountant(half_life=100)
        with pytest.raises(ValueError):
            acc.set_priority_factor("alice", 0)

    def test_invalid_half_life_rejected(self):
        with pytest.raises(ValueError):
            Accountant(half_life=0)

    def test_time_cannot_go_backwards(self):
        acc = Accountant(half_life=100, now=50)
        with pytest.raises(ValueError):
            acc.advance_to(10)

    def test_release_without_claim_rejected(self):
        acc = Accountant(half_life=100)
        with pytest.raises(ValueError):
            acc.resource_released("alice")


class TestUpDownDynamics:
    def test_priority_rises_while_resources_held(self):
        acc = Accountant(half_life=100)
        for _ in range(4):
            acc.resource_claimed("alice")
        before = acc.effective_priority("alice")
        acc.advance_to(200)
        assert acc.effective_priority("alice") > before

    def test_priority_converges_to_resources_in_use(self):
        acc = Accountant(half_life=10)
        for _ in range(4):
            acc.resource_claimed("alice")
        acc.advance_to(1000)  # 100 half-lives
        assert acc.effective_priority("alice") == pytest.approx(4.0, rel=1e-3)

    def test_priority_decays_after_release(self):
        acc = Accountant(half_life=100)
        for _ in range(4):
            acc.resource_claimed("alice")
        acc.advance_to(500)
        peak = acc.effective_priority("alice")
        for _ in range(4):
            acc.resource_released("alice")
        acc.advance_to(600)
        assert acc.effective_priority("alice") < peak

    def test_decay_half_life_is_honoured(self):
        acc = Accountant(half_life=100)
        acc.resource_claimed("alice")
        acc.advance_to(1000)  # converge near 1.0
        acc.resource_released("alice")
        at_release = acc.record("alice").real_priority
        acc.advance_to(1100)  # exactly one half-life later
        expected = max(MINIMUM_PRIORITY, at_release / 2)
        assert acc.record("alice").real_priority == pytest.approx(expected, rel=1e-6)

    def test_priority_never_below_floor(self):
        acc = Accountant(half_life=10)
        acc.resource_claimed("alice")
        acc.resource_released("alice")
        acc.advance_to(10_000)
        assert acc.record("alice").real_priority >= MINIMUM_PRIORITY

    def test_accumulated_usage_counts_resource_seconds(self):
        acc = Accountant(half_life=100)
        acc.resource_claimed("alice")
        acc.resource_claimed("alice")
        acc.advance_to(50)
        assert acc.record("alice").accumulated_usage == pytest.approx(100.0)

    def test_monotone_decay(self):
        acc = Accountant(half_life=100)
        acc.resource_claimed("alice")
        acc.advance_to(300)
        acc.resource_released("alice")
        last = acc.effective_priority("alice")
        for t in range(400, 1000, 100):
            acc.advance_to(t)
            current = acc.effective_priority("alice")
            assert current <= last
            last = current


class TestNegotiationOrder:
    def test_light_user_served_before_heavy_user(self):
        acc = Accountant(half_life=100)
        acc.resource_claimed("heavy")
        acc.resource_claimed("heavy")
        acc.record("light")
        acc.advance_to(300)
        assert acc.negotiation_order(["heavy", "light"]) == ["light", "heavy"]

    def test_priority_factor_overrides_usage(self):
        acc = Accountant(half_life=100)
        acc.set_priority_factor("vip", 0.01)
        acc.resource_claimed("vip")
        acc.resource_claimed("vip")
        acc.record("pleb")
        acc.advance_to(300)
        assert acc.negotiation_order(["pleb", "vip"]) == ["vip", "pleb"]

    def test_ties_broken_by_name(self):
        acc = Accountant(half_life=100)
        assert acc.negotiation_order(["zeta", "alpha"]) == ["alpha", "zeta"]


class TestFairShares:
    def test_equal_priorities_split_evenly(self):
        acc = Accountant(half_life=100)
        shares = acc.fair_shares(["a", "b"])
        assert shares["a"] == pytest.approx(0.5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_shares_inverse_to_priority(self):
        acc = Accountant(half_life=100)
        acc.set_priority_factor("a", 1.0)
        acc.set_priority_factor("b", 3.0)
        shares = acc.fair_shares(["a", "b"])
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)

    def test_usage_report_sorted_best_first(self):
        acc = Accountant(half_life=100)
        acc.resource_claimed("greedy")
        acc.record("idle")
        acc.advance_to(500)
        report = acc.usage_report()
        assert report[0][0] == "idle"
        assert report[1][0] == "greedy"
