"""Unit + property tests for the provider index (S7).

The crucial property is *soundness*: matching restricted to the index's
candidate set finds exactly the same matches as the naive scan.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd, parse
from repro.matchmaking import (
    Predicate,
    ProviderIndex,
    conjuncts,
    constraints_satisfied,
    extract_predicates,
)


def machine(arch="INTEL", opsys="SOLARIS251", memory=64, disk=100_000):
    return ClassAd(
        {
            "Type": "Machine",
            "Arch": arch,
            "OpSys": opsys,
            "Memory": memory,
            "Disk": disk,
        }
    )


def job(constraint, **attrs):
    ad = ClassAd({"Type": "Job", **attrs})
    ad.set_expr("Constraint", constraint)
    return ad


class TestConjuncts:
    def test_flat_expression(self):
        assert len(conjuncts(parse("a == 1"))) == 1

    def test_and_chain_is_split(self):
        parts = conjuncts(parse("a == 1 && b == 2 && c == 3"))
        assert len(parts) == 3

    def test_or_is_not_split(self):
        parts = conjuncts(parse("a == 1 || b == 2"))
        assert len(parts) == 1

    def test_nested_groups(self):
        parts = conjuncts(parse("(a == 1 && b == 2) && (c || d)"))
        assert len(parts) == 3


class TestExtraction:
    def test_equality_on_other(self):
        j = job('other.Arch == "INTEL"')
        preds = extract_predicates(j["Constraint"], j)
        assert Predicate("arch", "==", "INTEL") in preds

    def test_equality_reversed_operands(self):
        j = job('"INTEL" == other.Arch')
        preds = extract_predicates(j["Constraint"], j)
        assert Predicate("arch", "==", "INTEL") in preds

    def test_bare_name_not_in_customer_is_provider_side(self):
        j = job('Arch == "INTEL"')
        preds = extract_predicates(j["Constraint"], j)
        assert Predicate("arch", "==", "INTEL") in preds

    def test_bare_name_in_customer_is_not_extracted(self):
        j = job('Arch == "INTEL"', Arch="INTEL")  # self-referential: about the job
        assert extract_predicates(j["Constraint"], j) == []

    def test_range_with_customer_expression(self):
        # Figure 2's `other.Memory >= self.Memory`.
        j = job("other.Memory >= self.Memory", Memory=31)
        preds = extract_predicates(j["Constraint"], j)
        assert Predicate("memory", ">=", 31) in preds

    def test_range_flipped(self):
        j = job("10000 <= other.Disk")
        preds = extract_predicates(j["Constraint"], j)
        assert Predicate("disk", ">=", 10000) in preds

    def test_disjunction_not_extracted(self):
        j = job('other.Arch == "INTEL" || other.Arch == "SPARC"')
        assert extract_predicates(j["Constraint"], j) == []

    def test_conjunct_inside_conditional_not_extracted(self):
        j = job('other.Fast ? other.Arch == "INTEL" : true')
        assert extract_predicates(j["Constraint"], j) == []

    def test_figure2_constraint_extracts_everything_useful(self):
        from repro.paper import figure2_job

        j = figure2_job()
        preds = extract_predicates(j["Constraint"], j)
        attrs = {p.attr for p in preds}
        assert {"type", "arch", "opsys", "disk", "memory"} <= attrs


class TestIndexPruning:
    def test_equality_pruning(self):
        providers = [machine(arch="INTEL"), machine(arch="SPARC")]
        index = ProviderIndex(providers)
        j = job('other.Arch == "INTEL"')
        candidates = index.candidates_for(j)
        assert candidates == [providers[0]]

    def test_equality_case_insensitive(self):
        providers = [machine(arch="intel")]
        index = ProviderIndex(providers)
        j = job('other.Arch == "INTEL"')
        assert index.candidates_for(j) == providers

    def test_range_pruning(self):
        providers = [machine(memory=m) for m in (16, 32, 64, 128)]
        index = ProviderIndex(providers)
        j = job("other.Memory >= 64")
        assert index.candidates_for(j) == providers[2:]

    def test_strict_range_bounds(self):
        providers = [machine(memory=m) for m in (32, 64)]
        index = ProviderIndex(providers)
        assert index.candidates_for(job("other.Memory > 32")) == [providers[1]]
        assert index.candidates_for(job("other.Memory < 64")) == [providers[0]]
        assert index.candidates_for(job("other.Memory <= 64")) == providers

    def test_provider_with_non_constant_attr_never_pruned(self):
        dynamic = machine()
        dynamic.set_expr("Memory", "other.Hint * 2")  # needs the other ad
        index = ProviderIndex([dynamic])
        j = job("other.Memory >= 10000")
        assert index.candidates_for(j) == [dynamic]

    def test_provider_missing_attr_not_pruned_by_index(self):
        # Sound superset: the full match still rejects it (undefined).
        bare = ClassAd({"Type": "Machine"})
        index = ProviderIndex([bare])
        j = job("other.Memory >= 64")
        assert index.candidates_for(j) == [bare]
        assert not constraints_satisfied(j, bare)

    def test_unconstrained_customer_gets_all(self):
        providers = [machine(), machine()]
        index = ProviderIndex(providers)
        assert index.candidates_for(ClassAd({})) == providers

    def test_empty_result_possible(self):
        index = ProviderIndex([machine(arch="SPARC")])
        assert index.candidates_for(job('other.Arch == "ALPHA"')) == []


# -- the soundness property ------------------------------------------------

archs = st.sampled_from(["INTEL", "SPARC", "ALPHA", "HPPA"])
opsyses = st.sampled_from(["SOLARIS251", "LINUX", "IRIX65"])
memories = st.sampled_from([16, 32, 64, 128, 256])

provider_ads = st.builds(
    lambda a, o, m: machine(arch=a, opsys=o, memory=m), archs, opsyses, memories
)

constraint_texts = st.sampled_from(
    [
        'other.Arch == "INTEL"',
        'other.Arch == "INTEL" && other.Memory >= 64',
        "other.Memory >= self.Memory",
        "other.Memory > 32 && other.Memory <= 128",
        'other.Arch == "SPARC" || other.Memory >= 128',
        'other.OpSys == "LINUX" && (other.Memory >= 64 || other.Arch == "INTEL")',
        "true",
        'other.Arch != "INTEL"',
    ]
)


class TestIndexSoundness:
    @given(st.lists(provider_ads, max_size=12), constraint_texts, memories)
    @settings(max_examples=150, deadline=None)
    def test_indexed_matching_equals_naive_matching(self, providers, text, mem):
        customer = job(text, Memory=mem)
        index = ProviderIndex(providers)
        candidates = index.candidates_for(customer)
        naive = [p for p in providers if constraints_satisfied(customer, p)]
        via_index = [p for p in candidates if constraints_satisfied(customer, p)]
        assert naive == via_index
