"""Unit tests for gangmatching / co-allocation (S20)."""

import pytest

from repro.classads import ClassAd
from repro.matchmaking import GangRequest, GangStats, Port, gang_match, gang_match_all


def machine(name, arch="INTEL", memory=64):
    ad = ClassAd(
        {"Type": "Machine", "Name": name, "Arch": arch, "Memory": memory}
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


def license_ad(app, host, seats=1):
    ad = ClassAd(
        {"Type": "License", "App": app, "Host": host, "Seats": seats}
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


def request(owner="raman", memory=32, ports=None):
    base = ClassAd({"Type": "Job", "Owner": owner, "Memory": memory})
    return GangRequest(base=base, ports=ports or [])


class TestSinglePort:
    def test_degenerate_gang_is_bilateral_match(self):
        gang = request(
            ports=[Port("cpu", 'other.Type == "Machine" && other.Memory >= self.Memory')]
        )
        match = gang_match(gang, [machine("m0")])
        assert match is not None
        assert match.provider("cpu").evaluate("Name") == "m0"

    def test_no_candidate(self):
        gang = request(
            memory=128,
            ports=[Port("cpu", 'other.Type == "Machine" && other.Memory >= self.Memory')],
        )
        assert gang_match(gang, [machine("m0", memory=64)]) is None

    def test_rank_orders_candidates(self):
        gang = request(
            ports=[Port("cpu", 'other.Type == "Machine"', rank="other.Memory")]
        )
        small, big = machine("small", memory=32), machine("big", memory=256)
        match = gang_match(gang, [small, big])
        assert match.provider("cpu") is big

    def test_provider_side_constraint_respected(self):
        fussy = machine("fussy")
        fussy.set_expr("Constraint", 'other.Owner == "miron"')
        gang = request(owner="raman", ports=[Port("cpu", 'other.Type == "Machine"')])
        assert gang_match(gang, [fussy]) is None
        miron = request(owner="miron", ports=[Port("cpu", 'other.Type == "Machine"')])
        assert gang_match(miron, [fussy]) is not None


class TestCrossPortConstraints:
    def co_allocation_request(self):
        """Job needing a machine AND a license valid on that machine."""
        return request(
            ports=[
                Port("cpu", 'other.Type == "Machine" && other.Memory >= self.Memory'),
                Port(
                    "license",
                    'other.Type == "License" && other.App == "run_sim" '
                    "&& other.Host == cpu.Name",
                ),
            ]
        )

    def test_license_bound_to_matched_machine(self):
        providers = [
            machine("m0"),
            machine("m1"),
            license_ad("run_sim", host="m1"),
        ]
        match = gang_match(self.co_allocation_request(), providers)
        assert match is not None
        assert match.provider("cpu").evaluate("Name") == "m1"
        assert match.provider("license").evaluate("Host") == "m1"

    def test_backtracking_revisits_first_port(self):
        # m0 is tried first for the cpu port (input order), but only m1
        # has a license — the search must backtrack.
        stats = GangStats()
        providers = [machine("m0"), machine("m1"), license_ad("run_sim", "m1")]
        match = gang_match(self.co_allocation_request(), providers, stats=stats)
        assert match is not None
        assert stats.backtracks >= 1

    def test_unsatisfiable_co_allocation(self):
        providers = [machine("m0"), license_ad("run_sim", host="elsewhere")]
        assert gang_match(self.co_allocation_request(), providers) is None

    def test_provider_serves_at_most_one_port(self):
        # A single ad cannot fill both ports even if it satisfies both
        # constraints.
        both = ClassAd(
            {"Type": "Machine", "Name": "hybrid", "Memory": 64, "App": "x"}
        )
        gang = request(
            ports=[
                Port("a", 'other.Type == "Machine"'),
                Port("b", 'other.Type == "Machine"'),
            ]
        )
        assert gang_match(gang, [both]) is None
        assert gang_match(gang, [both, machine("m2")]) is not None


class TestRequestValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            request(ports=[Port("x", "true"), Port("x", "true")])

    def test_label_colliding_with_base_attr_rejected(self):
        base = ClassAd({"Type": "Job", "cpu": 1})
        with pytest.raises(ValueError):
            GangRequest(base=base, ports=[Port("cpu", "true")])


class TestGangMatchAll:
    def test_earlier_requests_consume_providers(self):
        providers = [machine("m0"), license_ad("run_sim", "m0")]
        first = request(
            ports=[
                Port("cpu", 'other.Type == "Machine"'),
                Port("lic", 'other.Type == "License" && other.Host == cpu.Name'),
            ]
        )
        second = request(ports=[Port("cpu", 'other.Type == "Machine"')])
        results = gang_match_all([first, second], providers)
        assert results[0] is not None
        assert results[1] is None  # m0 already taken

    def test_independent_requests_both_served(self):
        providers = [machine("m0"), machine("m1")]
        requests = [
            request(ports=[Port("cpu", 'other.Type == "Machine"')])
            for _ in range(2)
        ]
        results = gang_match_all(requests, providers)
        assert all(r is not None for r in results)
        names = {r.provider("cpu").evaluate("Name") for r in results}
        assert names == {"m0", "m1"}
