"""Smoke tests: every example script must run cleanly end to end.

Examples are part of the public surface (README links them); these tests
keep them from rotting as the library evolves.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    ("quickstart.py", ["quickstart OK"]),
    ("figure_ads.py", ["Figure 1", "rival", "no"]),
    ("condor_day.py", ["pool metrics", "fair-share ledger", "protocol trace"]),
    ("diagnostics_tool.py", ["UNSATISFIABLE", "pool census"]),
    ("gang_allocation.py", ["co-allocated", "NO MATCH"]),
    ("flock_overflow.py", ["flocking OK", "autonomy preserved"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, f"{script}: missing {needle!r}"
