"""Unit tests for the post-hoc protocol invariant checker."""

from repro.obs.events import Event
from repro.obs.invariants import check_events


def ev(seq, t, kind, **fields):
    return Event(seq=seq, t=t, kind=kind, fields=fields)


def machine_claim(seq, t, machine="m0", match=1, job=1):
    return ev(seq, t, "claim-response", machine=machine, accepted=True,
              reason="", match=match, job=job)


class TestSafety:
    def test_clean_stream_ok(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="alice", job=1),
            machine_claim(2, 1.0),
            ev(3, 1.0, "claim-accepted", owner="alice", job=1, match=1),
            ev(4, 9.0, "job-completed", machine="m0", job=1),
            ev(5, 9.1, "job-done", owner="alice", job=1),
        ]
        report = check_events(events, require_complete=True)
        assert report.ok
        assert report.stats["machine_claims"] == 1
        assert report.stats["jobs_done"] == 1

    def test_machine_overlap_detected(self):
        events = [
            machine_claim(1, 1.0, match=1, job=1),
            machine_claim(2, 2.0, match=2, job=2),  # m0 double-booked
        ]
        report = check_events(events)
        assert not report.ok
        assert report.violations[0].invariant == "machine-overlap"

    def test_claim_end_clears_the_machine(self):
        events = [
            machine_claim(1, 1.0, match=1, job=1),
            ev(2, 5.0, "job-evicted", machine="m0", job=1, reason="owner"),
            machine_claim(3, 6.0, match=2, job=2),
        ]
        assert check_events(events).ok

    def test_machine_crash_vaporizes_the_claim(self):
        events = [
            machine_claim(1, 1.0),
            ev(2, 5.0, "machine-crash", machine="m0"),
            machine_claim(3, 6.0, match=2, job=2),
        ]
        assert check_events(events).ok

    def test_rejected_claim_response_is_not_a_claim(self):
        events = [
            machine_claim(1, 1.0),
            ev(2, 2.0, "claim-response", machine="m0", accepted=False,
               reason="busy", match=2, job=2),
        ]
        assert check_events(events).ok

    def test_job_overlap_detected(self):
        events = [
            ev(1, 1.0, "claim-accepted", owner="alice", job=1, match=1),
            ev(2, 2.0, "claim-accepted", owner="alice", job=1, match=2),
        ]
        report = check_events(events)
        assert not report.ok
        assert report.violations[0].invariant == "job-overlap"

    def test_lease_lost_ends_the_job_claim(self):
        events = [
            ev(1, 1.0, "claim-accepted", owner="alice", job=1, match=1),
            ev(2, 5.0, "claim.lease.lost", owner="alice", job=1, match=1),
            ev(3, 6.0, "claim-accepted", owner="alice", job=1, match=2),
        ]
        assert check_events(events).ok

    def test_double_completion_detected(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="alice", job=1),
            ev(2, 5.0, "job-done", owner="alice", job=1),
            ev(3, 6.0, "job-done", owner="alice", job=1),
        ]
        report = check_events(events)
        assert not report.ok
        assert report.violations[0].invariant == "double-completion"


class TestLiveness:
    def test_loose_ends_are_warnings_by_default(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="alice", job=1),
            machine_claim(2, 1.0),
            ev(3, 1.0, "claim-accepted", owner="alice", job=1, match=1),
        ]
        report = check_events(events)
        assert report.ok
        assert {w.invariant for w in report.warnings} == {
            "unterminated-machine-claim",
            "unterminated-job-claim",
            "incomplete-job",
        }

    def test_require_complete_promotes_them(self):
        events = [ev(1, 0.0, "job-submitted", owner="alice", job=1)]
        report = check_events(events, require_complete=True)
        assert not report.ok
        assert report.violations[0].invariant == "incomplete-job"

    def test_removed_job_counts_as_finished(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="alice", job=1),
            ev(2, 5.0, "job-removed", owner="alice", job=1),
        ]
        assert check_events(events, require_complete=True).ok

    def test_render_mentions_violations(self):
        events = [
            machine_claim(1, 1.0, match=1, job=1),
            machine_claim(2, 2.0, match=2, job=2),
        ]
        text = check_events(events).render()
        assert "VIOLATION" in text
        assert "machine-overlap" in text


class TestViolationAnchors:
    """Violations carry job/match/trace anchors for tooling pivots."""

    def test_machine_overlap_resolves_owner_via_match(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="a", job=1, trace="job.a.1"),
            ev(2, 0.0, "job-submitted", owner="b", job=2, trace="job.b.2"),
            ev(3, 1.0, "match-notified-customer", owner="a", job=1, match=1),
            ev(4, 1.5, "match-notified-customer", owner="b", job=2, match=2),
            machine_claim(5, 2.0, match=1, job=1),
            machine_claim(6, 3.0, match=2, job=2),
        ]
        report = check_events(events)
        (violation,) = report.violations
        assert violation.invariant == "machine-overlap"
        assert violation.job == "b.2"
        assert violation.match == 2
        assert violation.trace == "job.b.2"
        assert "job=b.2" in str(violation)
        assert "trace=job.b.2" in str(violation)

    def test_trace_absent_when_recorded_without_tracing(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="a", job=1),
            machine_claim(2, 2.0, match=1, job=1),
            machine_claim(3, 3.0, match=2, job=2),
        ]
        (violation,) = check_events(events).violations
        assert violation.trace is None
        assert "trace=" not in str(violation)

    def test_incomplete_job_carries_anchors(self):
        events = [ev(1, 0.0, "job-submitted", owner="a", job=1, trace="job.a.1")]
        report = check_events(events, require_complete=True)
        (violation,) = report.violations
        assert violation.invariant == "incomplete-job"
        assert violation.job == "a.1"
        assert violation.trace == "job.a.1"

    def test_double_completion_carries_anchors(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="a", job=1, trace="job.a.1"),
            ev(2, 5.0, "job-done", owner="a", job=1),
            ev(3, 6.0, "job-done", owner="a", job=1),
        ]
        (violation,) = check_events(events).violations
        assert violation.invariant == "double-completion"
        assert violation.job == "a.1"
        assert violation.trace == "job.a.1"
