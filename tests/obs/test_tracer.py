"""Unit tests for the span tracer (nesting, events, no-op path)."""

import pytest

from repro.obs import NULL_SPAN, Tracer


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestNesting:
    def test_parent_depth_index_tree(self, tracer):
        with tracer.span("cycle") as cycle:
            with tracer.span("submitter") as sub:
                with tracer.span("try_match"):
                    pass
                with tracer.span("try_match"):
                    pass
            with tracer.span("spin_pie"):
                pass

        assert [s.name for s in tracer.spans] == [
            "cycle",
            "submitter",
            "try_match",
            "try_match",
            "spin_pie",
        ]
        assert cycle.depth == 0 and cycle.parent is None
        assert sub.depth == 1 and sub.parent == cycle.index
        matches = tracer.of_name("try_match")
        assert all(m.parent == sub.index and m.depth == 2 for m in matches)
        assert tracer.spans[-1].parent == cycle.index

    def test_durations_are_measured_and_nested(self, tracer):
        import time

        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        outer, inner = tracer.spans
        assert inner.duration is not None and inner.duration >= 0.002
        assert outer.duration >= inner.duration

    def test_annotate_after_entry(self, tracer):
        with tracer.span("try_match", submitter="alice") as span:
            span.annotate(matched=True)
        assert tracer.spans[0].fields == {"submitter": "alice", "matched": True}

    def test_sequential_spans_share_no_parent(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert tracer.spans[1].parent is None
        assert tracer.spans[1].depth == 0


class TestEvents:
    def test_event_attributed_to_open_span(self, tracer):
        with tracer.span("claim") as span:
            tracer.event("claim_requested", job=7)
        (event,) = tracer.events
        assert event["event"] == "claim_requested"
        assert event["parent"] == span.index
        assert event["fields"] == {"job": 7}

    def test_toplevel_event_has_no_parent(self, tracer):
        tracer.event("tick")
        assert tracer.events[0]["parent"] is None


class TestExportShapes:
    def test_to_dicts_schema(self, tracer):
        with tracer.span("cycle", providers=3):
            pass
        (d,) = tracer.to_dicts()
        assert set(d) == {"span", "index", "parent", "depth", "duration_s", "fields"}
        assert d["span"] == "cycle"
        assert d["fields"] == {"providers": 3}
        assert d["duration_s"] > 0

    def test_render_indents_by_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert "outer" in lines[0]
        assert lines[1].index("inner") > lines[0].index("outer")

    def test_reset_drops_everything(self, tracer):
        with tracer.span("x"):
            tracer.event("e")
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.events == []
        assert tracer._stack == []


class TestDisabled:
    def test_disabled_span_is_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("cycle", anything=1)
        b = tracer.span("other")
        assert a is NULL_SPAN
        assert b is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        tracer = Tracer(enabled=False)
        with tracer.span("cycle") as span:
            span.annotate(matched=True)
            tracer.event("ignored")
        assert len(tracer) == 0
        assert tracer.events == []

    def test_enable_mid_run_starts_recording(self):
        tracer = Tracer(enabled=False)
        with tracer.span("before"):
            pass
        tracer.enable()
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.spans] == ["after"]
