"""Exporter schema tests and global-singleton integration tests."""

import io
import json

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import OBS_SCHEMA, dump, snapshot, write_json


@pytest.fixture
def populated():
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(enabled=True)
    registry.counter("matchmaker.matched", "matches made").inc(3)
    registry.counter("claims.verified").inc(verdict="accepted")
    registry.histogram("matchmaker.cycle_seconds").observe(0.25)
    registry.gauge("collector.store_size").set(12)
    with tracer.span("negotiation_cycle", submitters=2):
        with tracer.span("try_match") as span:
            span.annotate(matched=True)
        tracer.event("claim_requested", job=1)
    return registry, tracer


class TestSnapshotSchema:
    def test_top_level_shape(self, populated):
        registry, tracer = populated
        snap = snapshot(registry, tracer)
        assert snap["schema"] == OBS_SCHEMA == "repro-obs/1"
        assert set(snap) == {"schema", "metrics", "spans", "events"}

    def test_metrics_section(self, populated):
        registry, tracer = populated
        snap = snapshot(registry, tracer)
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["matchmaker.matched"]["kind"] == "counter"
        assert by_name["matchmaker.matched"]["samples"][0]["value"] == 3
        assert by_name["claims.verified"]["samples"][0]["labels"] == {
            "verdict": "accepted"
        }
        hist = by_name["matchmaker.cycle_seconds"]
        assert hist["kind"] == "histogram"
        assert hist["samples"][0]["value"]["count"] == 1
        assert by_name["collector.store_size"]["kind"] == "gauge"

    def test_spans_and_events_sections(self, populated):
        registry, tracer = populated
        snap = snapshot(registry, tracer)
        assert [s["span"] for s in snap["spans"]] == [
            "negotiation_cycle",
            "try_match",
        ]
        assert snap["spans"][1]["parent"] == 0
        assert snap["events"][0]["event"] == "claim_requested"

    def test_snapshot_is_json_serializable(self, populated):
        registry, tracer = populated
        text = json.dumps(snapshot(registry, tracer))
        assert json.loads(text)["schema"] == "repro-obs/1"

    def test_prefix_filters_metrics(self, populated):
        registry, tracer = populated
        snap = snapshot(registry, tracer, prefix="matchmaker.")
        names = [m["name"] for m in snap["metrics"]]
        assert names == ["matchmaker.cycle_seconds", "matchmaker.matched"]


class TestWriteJson:
    def test_round_trip_via_file(self, populated, tmp_path):
        registry, tracer = populated
        path = write_json(str(tmp_path / "obs.json"), registry, tracer)
        with open(path) as handle:
            snap = json.load(handle)
        assert snap["schema"] == "repro-obs/1"
        assert len(snap["spans"]) == 2


class TestDump:
    def test_human_dump_renders_values(self, populated):
        registry, tracer = populated
        stream = io.StringIO()
        dump(registry, tracer, stream=stream)
        text = stream.getvalue()
        assert "matchmaker.matched 3" in text
        assert "claims.verified{verdict=accepted} 1" in text
        assert "negotiation_cycle" in text


class TestGlobalSingletons:
    """snapshot() with no arguments reads the process-wide state."""

    @pytest.fixture(autouse=True)
    def clean_globals(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_disabled_by_default_in_tests(self):
        assert not obs.is_enabled()

    def test_enable_records_and_snapshot_sees_it(self):
        obs.enable(trace=True)
        obs.metrics.counter("test.only").inc(2)
        with obs.tracer.span("test_span"):
            pass
        snap = snapshot()
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["test.only"]["samples"][0]["value"] == 2
        assert any(s["span"] == "test_span" for s in snap["spans"])

    def test_enable_without_trace_leaves_spans_off(self):
        obs.enable()
        assert obs.metrics.enabled
        assert not obs.tracer.enabled

    def test_reset_clears_recorded_state(self):
        obs.enable(trace=True)
        obs.metrics.counter("test.only").inc()
        with obs.tracer.span("s"):
            pass
        obs.reset()
        snap = snapshot()
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["test.only"]["samples"] == []
        assert snap["spans"] == []
