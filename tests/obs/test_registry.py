"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, RunningStats


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_basic_increment(self, registry):
        c = registry.counter("requests", "requests seen")
        c.inc()
        c.inc(2)
        assert c.value() == 3
        assert c.total == 3

    def test_labels_split_totals(self, registry):
        c = registry.counter("claims")
        c.inc(verdict="accepted")
        c.inc(verdict="accepted")
        c.inc(verdict="rejected")
        assert c.value(verdict="accepted") == 2
        assert c.value(verdict="rejected") == 1
        assert c.value(verdict="never_seen") == 0
        assert c.total == 3

    def test_label_order_is_irrelevant(self, registry):
        c = registry.counter("multi")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.value(a=1, b=2) == 2
        assert c.value(b=2, a=1) == 2

    def test_samples_carry_labels(self, registry):
        c = registry.counter("s")
        c.inc(5, kind="x")
        (sample,) = c.samples()
        assert sample == {"labels": {"kind": "x"}, "value": 5}


class TestGauge:
    def test_set_overwrites(self, registry):
        g = registry.gauge("pool_size")
        g.set(10)
        g.set(7)
        assert g.value() == 7

    def test_add_accumulates(self, registry):
        g = registry.gauge("queue_depth")
        g.add(3)
        g.add(-1)
        assert g.value() == 2


class TestHistogram:
    def test_observe_builds_running_stats(self, registry):
        h = registry.histogram("cycle_seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        stats = h.stats()
        assert isinstance(stats, RunningStats)
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_per_label_distributions(self, registry):
        h = registry.histogram("latency")
        h.observe(1.0, op="match")
        h.observe(9.0, op="claim")
        assert h.stats(op="match").mean == pytest.approx(1.0)
        assert h.stats(op="claim").mean == pytest.approx(9.0)
        assert h.stats(op="other") is None

    def test_samples_are_summaries(self, registry):
        h = registry.histogram("d")
        h.observe(2.0)
        h.observe(4.0)
        (sample,) = h.samples()
        summary = sample["value"]
        assert summary["count"] == 2
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["mean"] == pytest.approx(3.0)


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        a = registry.counter("x", "first")
        b = registry.counter("x", "second wins nothing")
        assert a is b
        assert len(registry) == 1

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_reset_keeps_registrations(self, registry):
        c = registry.counter("x")
        c.inc(4)
        registry.reset()
        assert c.value() == 0
        assert registry.get("x") is c

    def test_snapshot_lists_empty_metrics(self, registry):
        registry.counter("never_touched", "catalogue entry")
        snap = registry.snapshot()
        assert snap == [
            {
                "name": "never_touched",
                "kind": "counter",
                "description": "catalogue entry",
                "samples": [],
            }
        ]

    def test_snapshot_prefix_filter(self, registry):
        registry.counter("a.one").inc()
        registry.counter("b.two").inc()
        names = [m["name"] for m in registry.snapshot(prefix="a.")]
        assert names == ["a.one"]

    def test_totals_collapses_labels(self, registry):
        c = registry.counter("claims")
        c.inc(2, verdict="ok")
        c.inc(1, verdict="bad")
        registry.gauge("size").set(9)  # gauges excluded from totals
        assert registry.totals() == {"claims": 3}

    def test_collector_flushes_before_reads(self, registry):
        c = registry.counter("deferred")
        pending = [5]

        def flush():
            if pending[0]:
                c.inc(pending[0])
                pending[0] = 0

        registry.register_collector(flush)
        assert registry.totals()["deferred"] == 5
        assert pending[0] == 0

    def test_collector_flushes_before_reset(self, registry):
        c = registry.counter("deferred")
        calls = []
        registry.register_collector(lambda: calls.append(1))
        registry.reset()
        assert calls  # reset must settle pending values first
        assert c.value() == 0


class TestDisabled:
    """The no-op fast path: a disabled registry records nothing."""

    def test_disabled_counter_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x")
        c.inc()
        c.inc(10, label="y")
        assert c.value() == 0
        assert c.total == 0
        assert c._values == {}  # no allocation at all

    def test_disabled_gauge_and_histogram_record_nothing(self):
        registry = MetricsRegistry(enabled=False)
        g = registry.gauge("g")
        h = registry.histogram("h")
        g.set(5)
        g.add(2)
        h.observe(1.0)
        assert g._values == {}
        assert h._values == {}

    def test_enable_disable_round_trip(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x")
        c.inc()
        registry.enable()
        c.inc()
        registry.disable()
        c.inc()
        assert c.value() == 1

    def test_disabled_overhead_is_near_zero(self):
        """Coarse guard: disabled inc() must cost no more than a few
        times an attribute check + call (i.e. stay within an order of
        magnitude of a pure no-op call)."""
        import time

        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x")
        n = 200_000

        def noop():
            return None

        start = time.perf_counter()
        for _ in range(n):
            noop()
        base = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(n):
            c.inc()
        disabled = time.perf_counter() - start

        assert disabled < base * 10 + 0.05


class TestRunningStats:
    def test_welford_matches_direct_computation(self):
        values = [3.0, 1.5, 4.0, 1.0, 5.5]
        rs = RunningStats()
        for v in values:
            rs.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert rs.mean == pytest.approx(mean)
        assert rs.variance == pytest.approx(var)
        assert rs.total == pytest.approx(sum(values))

    def test_empty_stats_are_zero(self):
        rs = RunningStats()
        assert rs.mean == 0.0
        assert rs.variance == 0.0
        assert rs.to_dict() == {
            "count": 0,
            "sum": 0.0,
            "mean": 0.0,
            "stdev": 0.0,
            "min": 0.0,
            "max": 0.0,
        }

    def test_reexported_by_sim_metrics(self):
        from repro.sim.metrics import RunningStats as SimRunningStats

        assert SimRunningStats is RunningStats


def test_types_exported():
    registry = MetricsRegistry()
    assert isinstance(registry.counter("c"), Counter)
    assert isinstance(registry.gauge("g"), Gauge)
    assert isinstance(registry.histogram("h"), Histogram)
