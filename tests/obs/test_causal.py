"""Unit tests for the causal tracer (repro-trace/1) and the cross-daemon
trace propagation it enables.

The propagation half is the tentpole acceptance test: under every chaos
profile, each job's spans must form ONE connected DAG rooted at its
``job.submit`` span — retransmits, duplicates, partitions, and daemon
crashes included.  Orphan spans (a parent id that appears nowhere in
the trace) are a stitching bug, never data.
"""

import json

import pytest

from repro import obs
from repro.condor import CondorPool, Job, MachineSpec, PoolConfig
from repro.obs.causal import (
    TRACE_SCHEMA,
    CausalTracer,
    TraceContext,
    TraceError,
    check_dag,
    job_trace_id,
    read_jsonl,
    validate_record,
)
from repro.sim.chaos import PROFILES, chaos_profile


@pytest.fixture
def tracer():
    return CausalTracer(enabled=True)


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext("job.a.1", 4, 2)
        assert ctx.to_dict() == {"trace": "job.a.1", "span": 4, "parent": 2}

    def test_job_trace_id_is_deterministic(self):
        assert job_trace_id("alice", 7) == "job.alice.7"
        assert job_trace_id("alice", 7) == job_trace_id("alice", 7)


class TestCausalTracer:
    def test_disabled_is_noop(self):
        tracer = CausalTracer(enabled=False)
        assert tracer.start_trace("job.a.1", "job.submit") is None
        assert tracer.span("anything") is None
        assert len(tracer.spans()) == 0

    def test_root_span(self, tracer):
        ctx = tracer.start_trace("job.a.1", "job.submit", owner="a")
        assert ctx is not None
        assert ctx.trace_id == "job.a.1"
        (record,) = tracer.spans()
        assert record.name == "job.submit"
        assert record.parent is None
        assert record.fields == {"owner": "a"}

    def test_span_parents_on_activation(self, tracer):
        root = tracer.start_trace("job.a.1", "job.submit")
        with tracer.activate(root):
            child = tracer.span("send.Advertisement")
        assert child.trace_id == "job.a.1"
        assert tracer.spans()[-1].parent == root.span_id

    def test_explicit_parent_beats_activation(self, tracer):
        root = tracer.start_trace("job.a.1", "job.submit")
        other = tracer.start_trace("job.b.2", "job.submit")
        with tracer.activate(other):
            child = tracer.span("recv.Advertisement", parent=root)
        assert child.trace_id == "job.a.1"

    def test_parentless_span_is_dropped(self, tracer):
        assert tracer.span("send.Advertisement") is None
        assert len(tracer.spans()) == 0

    def test_activation_nests_and_restores(self, tracer):
        root = tracer.start_trace("job.a.1", "job.submit")
        with tracer.activate(root):
            inner = tracer.span("negotiate.match")
            with tracer.activate(inner):
                assert tracer.current() == inner
            assert tracer.current() == root
        assert tracer.current() is None

    def test_activate_none_is_transparent(self, tracer):
        root = tracer.start_trace("job.a.1", "job.submit")
        with tracer.activate(root):
            with tracer.activate(None):
                assert tracer.current() == root

    def test_span_ids_are_sequential(self, tracer):
        a = tracer.start_trace("job.a.1", "job.submit")
        b = tracer.start_trace("job.b.2", "job.submit")
        assert b.span_id == a.span_id + 1

    def test_ring_is_bounded(self):
        tracer = CausalTracer(enabled=True, capacity=4)
        for i in range(10):
            tracer.start_trace(f"job.a.{i}", "job.submit")
        assert len(tracer.spans()) == 4

    def test_reset_clears_everything(self, tracer):
        root = tracer.start_trace("job.a.1", "job.submit")
        tracer._stack.append(root)
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.current() is None
        fresh = tracer.start_trace("job.a.1", "job.submit")
        assert fresh.span_id == 1

    def test_of_trace_filters(self, tracer):
        tracer.start_trace("job.a.1", "job.submit")
        tracer.start_trace("job.b.2", "job.submit")
        assert [s.trace for s in tracer.of_trace("job.a.1")] == ["job.a.1"]


class TestSerialization:
    def test_file_sink_round_trip(self, tracer, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer.open_file(path)
        root = tracer.start_trace("job.a.1", "job.submit", owner="a")
        with tracer.activate(root):
            tracer.span("send.Advertisement", frm="schedd@a")
        tracer.close_file()
        spans = read_jsonl(path)
        assert [s.name for s in spans] == ["job.submit", "send.Advertisement"]
        assert spans[1].parent == spans[0].span
        assert spans[1].fields == {"frm": "schedd@a"}

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"span": 1, "t": 0.0, "trace": "x", "name": "y"}\n')
        with pytest.raises(TraceError):
            read_jsonl(str(path))

    def test_schema_header_value(self, tracer, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer.open_file(path)
        tracer.close_file()
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header == {"schema": TRACE_SCHEMA}

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(TraceError):
            validate_record({"span": 1, "t": 0.0, "trace": "x"})
        with pytest.raises(TraceError):
            validate_record({"span": "one", "t": 0.0, "trace": "x", "name": "y"})


class TestCheckDag:
    def test_connected_trace_passes(self, tracer):
        root = tracer.start_trace("job.a.1", "job.submit")
        with tracer.activate(root):
            child = tracer.span("send.Advertisement")
            with tracer.activate(child):
                tracer.span("recv.Advertisement")
        grouped = check_dag(tracer.spans())
        assert set(grouped) == {"job.a.1"}
        assert len(grouped["job.a.1"]) == 3

    def test_orphan_parent_raises(self):
        from repro.obs.causal import SpanRecord

        spans = [
            SpanRecord(1, 0.0, "job.a.1", "job.submit", None, {}),
            SpanRecord(2, 1.0, "job.a.1", "recv.X", 99, {}),
        ]
        with pytest.raises(TraceError, match="orphan"):
            check_dag(spans)

    def test_rootless_trace_raises(self):
        from repro.obs.causal import SpanRecord

        spans = [SpanRecord(2, 1.0, "job.a.1", "recv.X", 2, {})]
        with pytest.raises(TraceError):
            check_dag(spans)


# ---------------------------------------------------------------------------
# cross-daemon propagation under chaos (the tentpole acceptance property)


def run_traced_profile(name, horizon=3600.0, machines=5, jobs=10):
    """A recorded pool run under chaos with causal tracing on; returns
    (pool, spans)."""
    plan = chaos_profile(name, horizon=horizon)
    obs.reset()
    obs.enable(events=True, causal=True)
    try:
        specs = [
            MachineSpec(name=f"m{i}", mips=100.0 + 50.0 * (i % 3))
            for i in range(machines)
        ]
        pool = CondorPool(
            specs,
            config=PoolConfig(
                seed=plan.seed,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                chaos=plan,
                chaos_horizon=horizon,
            ),
        )
        batch = [
            Job(
                job_id=j,
                owner="alice" if j % 2 == 0 else "bob",
                total_work=600.0 + 60.0 * (j % 5),
            )
            for j in range(jobs)
        ]
        pool.submit_all(batch, arrival_times=[5.0 * j for j in range(len(batch))])
        pool.run_until_quiescent(check_interval=60.0, max_time=8.0 * horizon)
        spans = list(obs.causal_log.spans())
    finally:
        obs.disable()
        obs.reset()
    return pool, spans


class TestPropagationUnderChaos:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_one_connected_dag_per_job(self, profile):
        pool, spans = run_traced_profile(profile)
        # No orphans, one root per trace — raises otherwise.
        grouped = check_dag(spans)
        # Every submitted job produced a trace rooted at its submission.
        for job in pool.jobs():
            trace_id = job_trace_id(job.owner, job.job_id)
            assert trace_id in grouped, f"no trace for {trace_id}"
            roots = [s for s in grouped[trace_id] if s.parent is None]
            assert len(roots) == 1
            assert roots[0].name == "job.submit"

    def test_retransmit_copies_share_origin_span(self):
        # Under the lossy profile some sends are retried/duplicated; a
        # message's recv spans must all parent on the ORIGINATING send
        # span, so duplicates appear as sibling recvs, not new roots.
        _, spans = run_traced_profile("lossy")
        by_id = {s.span: s for s in spans}
        recvs = [s for s in spans if s.name.startswith("recv.")]
        assert recvs, "lossy run recorded no deliveries"
        for record in recvs:
            parent = by_id[record.parent]
            assert parent.name.startswith(("send.", "job.", "negotiate."))

    def test_spans_cover_the_whole_conversation(self):
        _, spans = run_traced_profile("cm-crash")
        names = {s.name for s in spans}
        for expected in (
            "job.submit",
            "send.Advertisement",
            "recv.Advertisement",
            "negotiate.match",
            "send.MatchNotification",
            "send.ClaimRequest",
            "recv.ClaimResponse",
            "send.JobCompleted",
        ):
            assert expected in names, f"missing {expected}"
