"""Unit tests for the structured negotiation event log (repro-events/1)."""

import json

import pytest

from repro.classads import ClassAd
from repro.matchmaking import attribute_failure, negotiation_cycle
from repro.obs import event_log
from repro.obs.events import (
    EVENTS_SCHEMA,
    Event,
    EventLog,
    EventLogError,
    read_jsonl,
    summarize,
    validate_record,
)


@pytest.fixture
def log():
    return EventLog(enabled=True)


@pytest.fixture
def global_log():
    """The process-wide log, enabled for the test and restored after."""
    event_log.reset()
    event_log.enable()
    yield event_log
    event_log.reset()
    event_log.disable()


def machine(name="m0", arch="INTEL", memory=64):
    ad = ClassAd(
        {"Type": "Machine", "Name": name, "Arch": arch, "Memory": memory, "State": "Unclaimed"}
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


def job(job_id, constraint, owner="raman"):
    ad = ClassAd({"Type": "Job", "JobId": job_id, "Owner": owner})
    ad.set_expr("Constraint", constraint)
    return ad


class TestEventLog:
    def test_emit_records_in_order(self, log):
        log.emit("a", t=1.0, x=1)
        log.emit("b", t=2.0)
        assert [e.kind for e in log] == ["a", "b"]
        assert log.events()[0].seq == 1
        assert log.events()[1].seq == 2
        assert log.events()[0].fields == {"x": 1}

    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.emit("a", t=1.0)
        assert len(log) == 0

    def test_ring_is_bounded(self):
        log = EventLog(enabled=True, capacity=10)
        for i in range(100):
            log.emit("tick", t=float(i), i=i)
        assert len(log) == 10
        # The newest events survive; sequence numbers keep counting.
        assert [e.fields["i"] for e in log] == list(range(90, 100))
        assert log.last("tick").seq == 100

    def test_clock_used_when_t_omitted(self, log):
        log.set_clock(lambda: 42.5)
        log.emit("a")
        assert log.events()[0].t == 42.5
        log.reset()
        # reset() restores the wall clock
        assert log.clock is not None
        assert log.clock() > 1_000_000

    def test_queries(self, log):
        log.emit("a", t=1.0)
        log.emit("b", t=2.0)
        log.emit("a", t=3.0)
        assert log.count("a") == 2
        assert log.first("a").t == 1.0
        assert log.last("a").t == 3.0
        assert log.kinds() == ["a", "b"]
        assert [e.kind for e in log.of_kind("b")] == ["b"]
        assert "a" in log.render(limit=1) or "b" in log.render(limit=1)


class TestJsonlRoundTrip:
    def test_file_sink_round_trip(self, log, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log.open_file(path)
        log.emit("cycle.begin", t=1.0, cycle=1)
        log.emit("match.reject", t=1.5, job=7, conjunct='other.Arch == "VAX"')
        log.close_file()
        events = read_jsonl(path)
        assert [e.kind for e in events] == ["cycle.begin", "match.reject"]
        assert events[1].fields["job"] == 7
        assert events[1].fields["conjunct"] == 'other.Arch == "VAX"'

    def test_header_line_is_schema(self, log, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log.open_file(path)
        log.close_file()
        first = json.loads(open(path).readline())
        assert first == {"schema": EVENTS_SCHEMA}

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1, "t": 0.0, "kind": "a", "fields": {}}\n')
        with pytest.raises(EventLogError):
            read_jsonl(str(path))

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": EVENTS_SCHEMA}) + '\n{"seq": "x"}\n')
        with pytest.raises(EventLogError):
            read_jsonl(str(path))

    def test_validate_record_requires_keys(self):
        validate_record({"seq": 1, "t": 0.0, "kind": "a", "fields": {}})
        with pytest.raises(EventLogError):
            validate_record({"seq": 1, "t": 0.0})
        with pytest.raises(EventLogError):
            validate_record({"seq": 1, "t": True, "kind": "a"})


class TestAttribution:
    def test_false_conjunct_named(self):
        j = job(7, 'other.Type == "Machine" && other.Arch == "VAX" && other.Memory >= 32')
        a = attribute_failure(j, machine())
        assert a is not None
        assert a.side == "customer"
        assert a.conjunct == 'other.Arch == "VAX"'
        assert a.value == "false"

    def test_undefined_attribute_named(self):
        j = job(8, 'other.Type == "Machine" && other.HasJava')
        a = attribute_failure(j, machine())
        assert a.value == "undefined"
        assert a.conjunct == "other.HasJava"
        assert "other.HasJava" in a.undefined_attrs

    def test_provider_side_attributed(self):
        j = job(9, 'other.Type == "Machine"')
        m = machine()
        m.set_expr("Constraint", 'other.Type == "Job" && other.Owner == "livny"')
        a = attribute_failure(j, m)
        assert a.side == "provider"
        assert a.conjunct == 'other.Owner == "livny"'

    def test_compatible_pair_attributes_nothing(self):
        j = job(10, 'other.Type == "Machine"')
        assert attribute_failure(j, machine()) is None


class TestLiveNegotiationForensics:
    def test_cycle_emits_attributed_rejections(self, global_log):
        jobs = [job(1, 'other.Type == "Machine" && other.Arch == "VAX"')]
        negotiation_cycle({"raman": jobs}, [machine()])
        rejects = global_log.of_kind("match.reject")
        assert len(rejects) == 1
        fields = rejects[0].fields
        assert fields["job"] == 1
        assert fields["reason"] == "constraint"
        assert fields["conjunct"] == 'other.Arch == "VAX"'
        assert fields["value"] == "false"
        assert global_log.count("job.unmatched") == 1
        assert global_log.last("cycle.end").fields["rejected"] == 1

    def test_match_made_event(self, global_log):
        jobs = [job(1, 'other.Type == "Machine"')]
        negotiation_cycle({"raman": jobs}, [machine()])
        made = global_log.of_kind("match.made")
        assert len(made) == 1
        assert made[0].fields["provider"] == "m0"

    def test_cycle_end_reports_evals_saved(self, global_log):
        from repro.classads import compile as cc

        previous = cc.compilation_enabled()
        cc.set_compilation(True)
        try:
            jobs = [job(1, 'other.Type == "Machine"')]
            pool = [machine()]
            negotiation_cycle({"raman": jobs}, pool)
            first = global_log.last("cycle.end").fields
            assert "evals_saved" in first
            # Second cycle over the same ads: the compiled Constraints are
            # cached, so evaluations are served without walking the ASTs.
            negotiation_cycle({"raman": jobs}, pool)
            warm = global_log.last("cycle.end").fields
            assert warm["evals_saved"] >= 1
        finally:
            cc.set_compilation(previous)

    def test_disabled_log_sees_nothing(self):
        event_log.reset()
        event_log.disable()
        jobs = [job(1, 'other.Type == "Machine"')]
        negotiation_cycle({"raman": jobs}, [machine()])
        assert len(event_log) == 0


class TestSummarize:
    def test_summary_shape(self):
        events = [
            Event(1, 0.0, "cycle.begin", {"cycle": 1}),
            Event(2, 0.1, "match.reject", {"side": "customer", "conjunct": "other.X"}),
            Event(3, 0.2, "match.reject", {"reason": "taken"}),
            Event(
                4,
                0.3,
                "cycle.end",
                {"cycle": 1, "requests": 2, "matched": 1, "rejected": 1, "preemptions": 0},
            ),
        ]
        summary = summarize(events)
        assert summary["schema"] == "repro-events-summary/1"
        assert summary["events"] == 4
        assert summary["by_kind"]["match.reject"] == 2
        assert summary["cycles"] == [
            {"cycle": 1, "requests": 2, "matched": 1, "rejected": 1, "preemptions": 0}
        ]
        reasons = {item["reason"]: item["count"] for item in summary["top_rejections"]}
        assert reasons == {"customer: other.X": 1, "taken": 1}


class TestTraceMirror:
    def test_trace_mirrors_into_global_log(self, global_log):
        from repro.sim import Trace

        trace = Trace(enabled=True)
        trace.emit(5.0, "claim-request", job=3)
        assert trace.count("claim-request") == 1
        mirrored = global_log.of_kind("claim-request")
        assert len(mirrored) == 1
        assert mirrored[0].t == 5.0
        assert mirrored[0].fields == {"job": 3}

    def test_disabled_trace_still_mirrors(self, global_log):
        from repro.sim import Trace

        trace = Trace(enabled=False)
        trace.emit(5.0, "ad-expired", name="m0")
        assert len(trace) == 0
        assert global_log.count("ad-expired") == 1

    def test_simulator_installs_its_clock(self, global_log):
        from repro.sim import Simulator

        sim = Simulator(start=100.0)
        assert global_log.count("sim.started") == 1
        global_log.emit("anything")
        assert global_log.last("anything").t == 100.0
        sim.schedule(5.0, lambda: global_log.emit("later"))
        sim.run()
        assert global_log.last("later").t == 105.0
