"""Integration: the instrumented subsystems actually report through obs.

Each test enables the global registry/tracer, drives a real code path
(matchmaking cycle, claim verification, ad store, simulator), and
checks the counters and spans it should have produced.
"""

import pytest

from repro import obs
from repro.classads import ClassAd
from repro.matchmaking import ProviderIndex, negotiation_cycle
from repro.protocols import AdStore, TicketAuthority, verify_claim


@pytest.fixture(autouse=True)
def obs_enabled():
    obs.enable(trace=True)
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def machine(name, arch="INTEL", memory=64):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": arch,
            "Memory": memory,
            "State": "Unclaimed",
            "ContactAddress": f"startd@{name}",
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    ad.set_expr("Rank", "0")
    return ad


def job(owner, arch="INTEL", memory=32):
    ad = ClassAd(
        {
            "Type": "Job",
            "Owner": owner,
            "Memory": memory,
            "ReqArch": arch,
            "ContactAddress": f"schedd@{owner}",
        }
    )
    ad.set_expr(
        "Constraint",
        'other.Type == "Machine" && other.Arch == self.ReqArch '
        "&& other.Memory >= self.Memory",
    )
    ad.set_expr("Rank", "0")
    return ad


class TestMatchmakerInstrumentation:
    def test_cycle_counts_matches_and_evaluations(self):
        providers = [machine(f"m{i}") for i in range(4)]
        requests = {"alice": [job("alice")], "bob": [job("bob")]}
        assignments = negotiation_cycle(requests, providers)

        totals = obs.metrics.totals()
        assert totals["matchmaker.cycles"] == 1
        assert totals["matchmaker.matched"] == len(assignments) == 2
        assert totals["matchmaker.requests"] == 2
        assert totals["classads.evaluations"] > 0
        assert totals["classads.eval_steps"] >= totals["classads.evaluations"]

        cycle_stats = obs.metrics.get("matchmaker.cycle_seconds").stats()
        assert cycle_stats is not None and cycle_stats.count == 1

    def test_cycle_emits_span_tree(self):
        providers = [machine(f"m{i}") for i in range(2)]
        negotiation_cycle({"alice": [job("alice")]}, providers)

        (cycle,) = obs.tracer.of_name("negotiation_cycle")
        submitters = obs.tracer.of_name("submitter")
        assert submitters and all(s.parent == cycle.index for s in submitters)
        matches = obs.tracer.of_name("try_match")
        assert matches and matches[0].fields.get("matched") is True

    def test_index_hits_counted(self):
        providers = [machine(f"m{i}", arch="SPARC" if i % 2 else "INTEL") for i in range(6)]
        index = ProviderIndex(providers)
        negotiation_cycle({"alice": [job("alice")]}, providers, index=index)
        totals = obs.metrics.totals()
        assert totals.get("index.hits", 0) + totals.get("index.misses", 0) > 0
        assert totals.get("index.pruned", 0) > 0  # SPARC machines pre-filtered


class TestClaimInstrumentation:
    def test_claim_verdicts_labeled(self):
        authority = TicketAuthority("mm", b"secret")
        provider = machine("m0")
        request = job("alice")
        decision = verify_claim(request, provider, authority.mint(), authority)
        assert decision.accepted
        bogus = verify_claim(request, provider, authority.mint(), TicketAuthority("mm", b"other"))
        assert not bogus.accepted

        verdicts = obs.metrics.get("claims.verified")
        assert verdicts.value(verdict="accepted") == 1
        assert verdicts.total == 2
        spans = obs.tracer.of_name("claim")
        assert len(spans) == 2
        assert spans[0].fields["verdict"] == "accepted"


class TestAdStoreInstrumentation:
    def test_stale_and_refresh_counted(self):
        store = AdStore()
        ad = machine("m0")
        store.insert("m0", ad, now=0.0, lifetime=10.0, sequence=2)
        store.insert("m0", ad, now=1.0, lifetime=10.0, sequence=1)  # stale
        store.insert("m0", ad, now=2.0, lifetime=10.0, sequence=3)  # refresh
        store.expire(now=100.0)
        totals = obs.metrics.totals()
        assert totals["adstore.stale_dropped"] == 1
        assert totals["adstore.refreshed"] == 2  # first insert + refresh
        assert totals["adstore.expired"] == 1


class TestSimInstrumentation:
    def test_engine_counts_events(self):
        from repro.sim import Simulator

        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda now=t: fired.append(now))
        sim.run()
        assert len(fired) == 3
        assert obs.metrics.totals()["sim.events"] == 3


class TestDisabledIsInert:
    def test_nothing_recorded_when_disabled(self):
        obs.disable()
        obs.reset()
        providers = [machine("m0")]
        negotiation_cycle({"alice": [job("alice")]}, providers)
        assert obs.metrics.totals() == {}
        assert len(obs.tracer) == 0
