"""Unit tests for the job lifecycle state machine and latency analytics.

The load-bearing properties: phase dwells telescope (they sum exactly to
end-to-end latency), terminal states are idempotent under duplicated
completion events (replays are counted, never double-counted), and the
percentile math is deterministic nearest-rank.
"""

import math

import pytest

from repro.obs.causal import SpanRecord
from repro.obs.events import Event
from repro.obs.lifecycle import (
    PHASE_ORDER,
    TERMINAL_STATES,
    build_lifecycles,
    critical_path,
    find_job,
    latency_table,
    percentile,
    render_critical_path,
    render_latency_table,
    render_timeline,
)


def ev(seq, t, kind, **fields):
    return Event(seq, t, kind, fields)


def happy_path(owner="alice", job=0, offset=0.0, work=600.0):
    """The canonical submit→completion event sequence for one job."""
    t = offset
    return [
        ev(1, t, "job-submitted", owner=owner, job=job, trace=f"job.{owner}.{job}"),
        ev(2, t, "advertise-job", owner=owner, job=job),
        ev(3, t + 60.0, "match.made", cycle=1, submitter=owner, job=job),
        ev(4, t + 60.1, "match-notified-customer", owner=owner, job=job, match=1),
        ev(5, t + 60.1, "claim-request", owner=owner, job=job, match=1),
        ev(6, t + 60.2, "claim-response", machine="m0", accepted=True, match=1, job=job),
        ev(7, t + 60.3, "claim-accepted", owner=owner, job=job, match=1),
        ev(8, t + 60.3 + work, "job-done", owner=owner, job=job),
    ]


class TestStateMachine:
    def test_happy_path_states(self):
        lifecycles = build_lifecycles(happy_path())
        lc = lifecycles[("alice", 0)]
        assert lc.terminal == "completed"
        assert lc.trace_id == "job.alice.0"
        assert [s.state for s in lc.segments] == [
            "queued",
            "advertised",
            "negotiated",
            "matched",
            "claim-requested",
            "claimed",
            "executing",
        ]
        assert lc.matches == 1

    def test_dwells_telescope_to_end_to_end(self):
        lc = build_lifecycles(happy_path())[("alice", 0)]
        assert math.isclose(sum(lc.dwell_by_phase().values()), lc.end_to_end())

    def test_rejected_claim_returns_to_queued(self):
        events = [
            ev(1, 0.0, "job-submitted", owner="a", job=1),
            ev(2, 0.0, "advertise-job", owner="a", job=1),
            ev(3, 60.0, "match-notified-customer", owner="a", job=1, match=5),
            ev(4, 60.1, "claim-request", owner="a", job=1),
            ev(5, 60.2, "claim-rejected", owner="a", job=1),
        ]
        lc = build_lifecycles(events)[("a", 1)]
        assert lc.state == "queued"
        assert lc.claim_rejections == 1

    def test_unknown_job_events_ignored(self):
        events = [ev(1, 1.0, "claim-request", owner="ghost", job=9)]
        assert build_lifecycles(events) == {}

    def test_duplicate_submission_keeps_original_clock(self):
        events = happy_path() + [ev(9, 5.0, "job-submitted", owner="alice", job=0)]
        lc = build_lifecycles(events)[("alice", 0)]
        assert lc.submit_t == 0.0


class TestTerminalIdempotence:
    def test_duplicated_completion_is_counted_not_replayed(self):
        events = happy_path()
        replay = ev(99, 700.0, "job-done", owner="alice", job=0)
        lifecycles = build_lifecycles(events + [replay, replay])
        lc = lifecycles[("alice", 0)]
        assert lc.terminal == "completed"
        assert lc.duplicate_terminals == 2
        # The replayed terminal must not move the completion time.
        assert lc.end_t == events[-1].t

    def test_percentiles_unchanged_by_duplicate_terminals(self):
        events = happy_path("alice", 0) + happy_path("bob", 1, offset=10.0, work=900.0)
        clean = latency_table(build_lifecycles(events))
        noisy = latency_table(
            build_lifecycles(events + [ev(99, 2000.0, "job-done", owner="bob", job=1)])
        )
        assert noisy["duplicate_terminals"] == 1
        assert noisy["end_to_end"] == clean["end_to_end"]
        assert noisy["phases"] == clean["phases"]

    def test_post_terminal_events_ignored_silently(self):
        events = happy_path() + [ev(99, 700.0, "advertise-job", owner="alice", job=0)]
        lc = build_lifecycles(events)[("alice", 0)]
        assert lc.terminal == "completed"
        assert lc.duplicate_terminals == 0

    def test_terminal_states_cover_done_and_removed(self):
        assert TERMINAL_STATES == {"completed", "removed"}


class TestFindJob:
    def test_bare_id(self):
        lifecycles = build_lifecycles(happy_path())
        assert [lc.owner for lc in find_job(lifecycles, "0")] == ["alice"]

    def test_owner_qualified(self):
        events = happy_path("alice", 0) + happy_path("bob", 0, offset=1.0)
        lifecycles = build_lifecycles(events)
        assert len(find_job(lifecycles, "0")) == 2
        assert [lc.owner for lc in find_job(lifecycles, "bob.0")] == ["bob"]

    def test_missing(self):
        assert find_job(build_lifecycles(happy_path()), "42") == []


class TestPercentiles:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.90) == 9.0
        assert percentile(values, 0.99) == 10.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_latency_table_schema(self):
        table = latency_table(build_lifecycles(happy_path()))
        assert table["schema"] == "repro-latency/1"
        assert table["jobs"] == table["jobs_completed"] == 1
        assert set(table["end_to_end"]) == {"n", "p50", "p90", "p99", "mean", "max"}
        assert list(table["phases"]) == sorted(
            table["phases"], key=lambda s: PHASE_ORDER.index(s)
        )


class TestCriticalPath:
    def make_trace(self):
        return [
            SpanRecord(1, 0.0, "job.a.0", "job.submit", None, {}),
            SpanRecord(2, 0.0, "job.a.0", "send.Advertisement", 1, {}),
            SpanRecord(3, 8.0, "job.a.0", "recv.Advertisement", 2, {}),
            SpanRecord(4, 60.0, "job.a.0", "negotiate.match", 3, {}),
            SpanRecord(5, 1.0, "job.b.1", "job.submit", None, {}),
        ]

    def test_walks_leaf_to_root(self):
        chain = critical_path(self.make_trace(), "job.a.0")
        assert [s.name for s in chain] == [
            "job.submit",
            "send.Advertisement",
            "recv.Advertisement",
            "negotiate.match",
        ]

    def test_render_includes_deltas(self):
        text = render_critical_path(critical_path(self.make_trace(), "job.a.0"))
        assert "negotiate.match" in text
        assert "root→leaf" in text

    def test_missing_trace_is_empty(self):
        assert critical_path(self.make_trace(), "job.nope.9") == []


class TestRendering:
    def test_timeline_total_matches_end_to_end(self):
        lc = build_lifecycles(happy_path())[("alice", 0)]
        text = render_timeline(lc)
        assert "job 0 (alice)" in text
        assert "trace job.alice.0" in text
        assert f"(= end-to-end {lc.end_to_end():.3f})" in text

    def test_latency_table_renders_all_phases(self):
        table = latency_table(build_lifecycles(happy_path()))
        text = render_latency_table(table)
        for phase in table["phases"]:
            assert phase in text
        assert "end-to-end" in text
