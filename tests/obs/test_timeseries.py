"""Unit tests for the pool-health time-series store (repro-series/1)."""

import json

import pytest

from repro.obs.timeseries import (
    SERIES_SCHEMA,
    Sample,
    SeriesError,
    SeriesStore,
    read_jsonl,
    render_header,
    render_row,
    render_table,
    validate_record,
)


@pytest.fixture
def store():
    return SeriesStore(enabled=True)


class TestSeriesStore:
    def test_disabled_is_noop(self):
        store = SeriesStore(enabled=False)
        store.sample(t=1.0, machines=5)
        assert len(store) == 0

    def test_samples_are_sequenced(self, store):
        store.sample(t=60.0, machines=5, claimed=2)
        store.sample(t=120.0, machines=5, claimed=3)
        first, second = store.samples()
        assert (first.seq, second.seq) == (1, 2)
        assert second.fields["claimed"] == 3
        assert store.last() is second

    def test_ring_is_bounded(self):
        store = SeriesStore(enabled=True, capacity=3)
        for i in range(10):
            store.sample(t=float(i), cycle=i)
        assert [s.fields["cycle"] for s in store] == [7, 8, 9]

    def test_clock_used_when_t_omitted(self, store):
        store.set_clock(lambda: 42.0)
        store.sample(machines=1)
        assert store.last().t == 42.0

    def test_reset_restarts_numbering(self, store):
        store.sample(t=1.0)
        store.reset()
        store.sample(t=2.0)
        assert store.last().seq == 1


class TestSerialization:
    def test_file_round_trip(self, store, tmp_path):
        path = str(tmp_path / "series.jsonl")
        store.open_file(path)
        store.sample(t=60.0, machines=5, match_rate=0.5)
        store.close_file()
        with open(path) as handle:
            assert json.loads(handle.readline()) == {"schema": SERIES_SCHEMA}
        (sample,) = read_jsonl(path)
        assert sample.t == 60.0
        assert sample.fields == {"machines": 5, "match_rate": 0.5}

    def test_sink_flushes_per_sample(self, store, tmp_path):
        # --watch depends on rows being visible while the run is live.
        path = str(tmp_path / "series.jsonl")
        store.open_file(path)
        store.sample(t=60.0, machines=5)
        with open(path) as handle:
            assert len(handle.readlines()) == 2  # header + the sample
        store.close_file()

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1, "t": 0.0, "fields": {}}\n')
        with pytest.raises(SeriesError):
            read_jsonl(str(path))

    def test_validate_rejects_bad_rows(self):
        with pytest.raises(SeriesError):
            validate_record({"seq": 1})
        with pytest.raises(SeriesError):
            validate_record({"seq": "one", "t": 0.0})
        with pytest.raises(SeriesError):
            validate_record({"seq": 1, "t": True})


class TestRendering:
    def sample(self, **fields):
        return Sample(1, 60.0, fields)

    def test_row_formats_match_rate(self):
        row = render_row(self.sample(cycle=1, match_rate=0.5))
        assert "0.50" in row

    def test_row_dashes_missing_fields(self):
        row = render_row(self.sample(cycle=1))
        assert "-" in row

    def test_table_is_header_plus_rows(self):
        samples = [self.sample(cycle=1), self.sample(cycle=2)]
        lines = render_table(samples).splitlines()
        assert lines[0] == render_header()
        assert len(lines) == 3

    def test_table_limit_keeps_tail(self):
        samples = [Sample(i, float(i), {"cycle": i}) for i in range(5)]
        lines = render_table(samples, limit=2).splitlines()
        assert len(lines) == 3
        assert "4" in lines[-1]
