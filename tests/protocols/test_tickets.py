"""Unit tests for authorization tickets and the handshake (S10/S11)."""

from repro.protocols import ChallengeResponse, Ticket, TicketAuthority


class TestTicketAuthority:
    def test_mint_and_validate(self):
        authority = TicketAuthority("leonardo", b"secret")
        ticket = authority.mint()
        assert authority.validate(ticket)

    def test_no_ticket_issued_yet(self):
        authority = TicketAuthority("leonardo", b"secret")
        assert authority.current is None
        assert not authority.validate(None)

    def test_new_ticket_invalidates_old(self):
        authority = TicketAuthority("leonardo", b"secret")
        old = authority.mint()
        new = authority.mint()
        assert not authority.validate(old)
        assert authority.validate(new)

    def test_revoke(self):
        authority = TicketAuthority("leonardo", b"secret")
        ticket = authority.mint()
        authority.revoke()
        assert not authority.validate(ticket)

    def test_forged_token_rejected(self):
        authority = TicketAuthority("leonardo", b"secret")
        real = authority.mint()
        forged = Ticket(real.issuer, real.serial, "0" * 64)
        assert not authority.validate(forged)

    def test_ticket_from_other_issuer_rejected(self):
        a = TicketAuthority("leonardo", b"secret")
        b = TicketAuthority("raphael", b"secret")
        a.mint()
        assert not a.validate(b.mint())

    def test_deterministic_given_secret(self):
        t1 = TicketAuthority("leonardo", b"k").mint()
        t2 = TicketAuthority("leonardo", b"k").mint()
        assert t1 == t2

    def test_different_secrets_differ(self):
        t1 = TicketAuthority("leonardo", b"k1").mint()
        t2 = TicketAuthority("leonardo", b"k2").mint()
        assert t1.token != t2.token


class TestTicketMatching:
    def test_matches_none_is_false(self):
        ticket = Ticket("x", 1, "tok")
        assert not ticket.matches(None)

    def test_matches_self(self):
        ticket = Ticket("x", 1, "tok")
        assert ticket.matches(Ticket("x", 1, "tok"))

    def test_serial_mismatch(self):
        assert not Ticket("x", 1, "tok").matches(Ticket("x", 2, "tok"))


class TestChallengeResponse:
    def test_round_trip(self):
        key = b"session-key"
        prover = ChallengeResponse(key)
        verifier = ChallengeResponse(key)
        challenge = b"nonce-123"
        assert verifier.verify(challenge, prover.respond(challenge))

    def test_wrong_key_fails(self):
        challenge = b"nonce-123"
        response = ChallengeResponse(b"key-a").respond(challenge)
        assert not ChallengeResponse(b"key-b").verify(challenge, response)

    def test_wrong_challenge_fails(self):
        prover = ChallengeResponse(b"key")
        response = prover.respond(b"nonce-1")
        assert not prover.verify(b"nonce-2", response)
