"""Unit tests for the advertising protocol (S9)."""

from repro.classads import ClassAd
from repro.protocols import AdStore, validate_ad


def valid_ad(**extra):
    ad = ClassAd(
        {
            "Type": "Machine",
            "ContactAddress": "startd@leonardo",
        }
    )
    ad.set_expr("Constraint", "true")
    for key, value in extra.items():
        ad[key] = value
    return ad


class TestValidation:
    def test_conforming_ad_passes(self):
        assert validate_ad(valid_ad()).ok

    def test_requirements_alias_accepted(self):
        ad = valid_ad()
        del ad["Constraint"]
        ad.set_expr("Requirements", "true")
        assert validate_ad(ad).ok

    def test_missing_constraint_flagged(self):
        ad = valid_ad()
        del ad["Constraint"]
        result = validate_ad(ad)
        assert not result.ok
        assert any("Constraint" in p for p in result.problems)

    def test_missing_contact_flagged(self):
        ad = valid_ad()
        del ad["ContactAddress"]
        assert not validate_ad(ad).ok

    def test_missing_type_flagged(self):
        ad = valid_ad()
        del ad["Type"]
        assert not validate_ad(ad).ok

    def test_requirements_may_be_relaxed(self):
        bare = ClassAd({"Type": "Query"})
        assert validate_ad(bare, require_constraint=False, require_contact=False).ok

    def test_multiple_problems_reported(self):
        result = validate_ad(ClassAd({}))
        assert len(result.problems) == 3


class TestAdStore:
    def test_insert_and_get(self):
        store = AdStore()
        ad = valid_ad()
        store.insert("leonardo", ad, now=0.0)
        assert store.get("leonardo") is ad
        assert "leonardo" in store
        assert len(store) == 1

    def test_refresh_replaces_and_renews(self):
        store = AdStore()
        store.insert("m", valid_ad(Memory=16), now=0.0, lifetime=100, sequence=1)
        store.insert("m", valid_ad(Memory=64), now=50.0, lifetime=100, sequence=2)
        assert store.get("m").evaluate("Memory") == 64
        assert store.expire(now=120.0) == []  # renewed at t=50, lives to 150
        assert store.expire(now=151.0) == ["m"]

    def test_out_of_order_advertisement_dropped(self):
        store = AdStore()
        assert store.insert("m", valid_ad(Memory=64), now=10.0, sequence=5)
        assert not store.insert("m", valid_ad(Memory=16), now=11.0, sequence=3)
        assert store.get("m").evaluate("Memory") == 64

    def test_expiry_reaps_only_stale(self):
        store = AdStore()
        store.insert("old", valid_ad(), now=0.0, lifetime=10)
        store.insert("fresh", valid_ad(), now=0.0, lifetime=1000)
        assert store.expire(now=20.0) == ["old"]
        assert len(store) == 1

    def test_age_of(self):
        store = AdStore()
        store.insert("m", valid_ad(), now=100.0)
        assert store.age_of("m", now=130.0) == 30.0
        assert store.age_of("missing", now=130.0) is None

    def test_remove(self):
        store = AdStore()
        store.insert("m", valid_ad(), now=0.0)
        assert store.remove("m")
        assert not store.remove("m")

    def test_clear_models_crash(self):
        # A matchmaker crash loses all soft state; re-advertisement
        # rebuilds it (experiment E1 exercises the full loop).
        store = AdStore()
        store.insert("m", valid_ad(), now=0.0)
        store.clear()
        assert len(store) == 0
        store.insert("m", valid_ad(), now=300.0)
        assert len(store) == 1

    def test_ads_and_records(self):
        store = AdStore()
        store.insert("a", valid_ad(), now=0.0)
        store.insert("b", valid_ad(), now=1.0)
        assert len(store.ads()) == 2
        assert sorted(r.name for r in store.records()) == ["a", "b"]
        assert sorted(store) == ["a", "b"]
