"""Property-based tests for the soft-state ad store (S9)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd
from repro.protocols import AdStore

names = st.sampled_from([f"m{i}" for i in range(5)])
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), names, st.floats(min_value=0, max_value=100),
                  st.floats(min_value=1, max_value=50), st.integers(min_value=0, max_value=20)),
        st.tuples(st.just("touch"), names, st.floats(min_value=0, max_value=100),
                  st.floats(min_value=1, max_value=50), st.integers(min_value=0, max_value=20)),
        st.tuples(st.just("remove"), names),
        st.tuples(st.just("expire"), st.floats(min_value=0, max_value=200)),
    ),
    max_size=40,
)


def replay(operations):
    """Apply operations with a monotone clock; mirror into a dict model."""
    store = AdStore()
    model = {}  # name -> (expires_at, sequence)
    now = 0.0
    for op in operations:
        if op[0] == "insert":
            _, name, dt, lifetime, seq = op
            now += dt
            accepted = store.insert(name, ClassAd({"Name": name}), now=now,
                                    lifetime=lifetime, sequence=seq)
            old = model.get(name)
            should_accept = old is None or seq >= old[1]
            assert accepted == should_accept
            if should_accept:
                model[name] = (now + lifetime, seq)
        elif op[0] == "touch":
            _, name, dt, lifetime, seq = op
            now += dt
            renewed = store.touch(name, now=now, lifetime=lifetime, sequence=seq)
            old = model.get(name)
            if old is None:
                assert renewed is None
            elif seq < old[1]:
                assert renewed is False
            else:
                assert renewed is True
                model[name] = (now + lifetime, seq)
        elif op[0] == "remove":
            _, name = op
            assert store.remove(name) == (name in model)
            model.pop(name, None)
        else:
            _, dt = op
            now += dt
            reaped = set(store.expire(now))
            should_reap = {n for n, (exp, _) in model.items() if exp <= now}
            assert reaped == should_reap
            for name in should_reap:
                del model[name]
    return store, model, now


class TestAdStoreModel:
    @given(ops)
    @settings(max_examples=200, deadline=None)
    def test_store_matches_reference_model(self, operations):
        store, model, now = replay(operations)
        assert set(store) == set(model)
        assert len(store) == len(model)

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_expire_is_idempotent(self, operations):
        store, model, now = replay(operations)
        store.expire(now)  # flush anything due exactly now
        assert store.expire(now) == []

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_stored_ads_are_retrievable(self, operations):
        store, model, now = replay(operations)
        for name in model:
            ad = store.get(name)
            assert ad is not None
            assert ad.evaluate("Name") == name

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_expiry_heap_stays_bounded(self, operations):
        """The lazily-invalidated heap may hold stale entries, but the
        compaction guard keeps it within a constant factor of the store."""
        store, model, now = replay(operations)
        assert len(store._expiry_heap) <= 4 * len(store._store) + 64

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_touch_renews_in_place(self, operations):
        """A touch never replaces the stored ad object."""
        store, model, now = replay(operations)
        for name in model:
            before = store.get(name)
            assert store.touch(name, now=now, lifetime=10.0,
                               sequence=model[name][1] + 1) is True
            assert store.get(name) is before
            rec = store.record(name)
            assert rec.expires_at == now + 10.0
