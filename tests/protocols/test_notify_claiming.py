"""Unit tests for match notification (S10) and claiming (S11)."""

import pytest

from repro.classads import ClassAd
from repro.protocols import (
    ClaimRequest,
    ClaimVerdict,
    TicketAuthority,
    build_notifications,
    contact_address,
    embed_ticket,
    respond_to_claim,
    ticket_from_ad,
    verify_claim,
)


def provider_ad(**extra):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": "leonardo",
            "Memory": 64,
            "ContactAddress": "startd@leonardo",
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Job" && other.Memory <= self.Memory')
    for key, value in extra.items():
        ad[key] = value
    return ad


def customer_ad(**extra):
    ad = ClassAd(
        {
            "Type": "Job",
            "Owner": "raman",
            "Memory": 31,
            "ContactAddress": "schedd@beak",
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Machine"')
    for key, value in extra.items():
        ad[key] = value
    return ad


class TestTicketEmbedding:
    def test_embed_and_extract_round_trip(self):
        authority = TicketAuthority("leonardo", b"secret")
        ticket = authority.mint()
        ad = provider_ad()
        embed_ticket(ad, ticket)
        assert ticket_from_ad(ad) == ticket

    def test_missing_ticket_is_none(self):
        assert ticket_from_ad(provider_ad()) is None

    def test_malformed_ticket_is_none(self):
        ad = provider_ad()
        ad["AuthTicket"] = {"Issuer": "x"}  # missing fields
        assert ticket_from_ad(ad) is None


class TestNotifications:
    def test_both_parties_notified_with_each_others_ads(self):
        cust, prov = customer_ad(), provider_ad()
        to_customer, to_provider = build_notifications("mm@cm", cust, prov)
        assert to_customer.recipient == "schedd@beak"
        assert to_provider.recipient == "startd@leonardo"
        assert to_customer.peer_ad is prov
        assert to_provider.peer_ad is cust
        assert to_customer.peer_address == "startd@leonardo"
        assert to_customer.match_id == to_provider.match_id

    def test_ticket_forwarded_to_customer_only(self):
        authority = TicketAuthority("leonardo", b"secret")
        prov = provider_ad()
        embed_ticket(prov, authority.mint())
        to_customer, to_provider = build_notifications("mm@cm", customer_ad(), prov)
        assert to_customer.ticket is not None
        assert to_provider.ticket is None
        assert authority.validate(to_customer.ticket)

    def test_session_key_shared_when_requested(self):
        to_customer, to_provider = build_notifications(
            "mm@cm", customer_ad(), provider_ad(), with_session_key=True
        )
        assert to_customer.session_key == to_provider.session_key
        assert to_customer.session_key is not None

    def test_missing_contact_address_rejected(self):
        prov = provider_ad()
        del prov["ContactAddress"]
        with pytest.raises(ValueError):
            build_notifications("mm@cm", customer_ad(), prov)

    def test_contact_address_helper(self):
        assert contact_address(provider_ad()) == "startd@leonardo"
        assert contact_address(ClassAd({})) is None
        assert contact_address(ClassAd({"ContactAddress": 5})) is None


class TestVerifyClaim:
    def setup_method(self):
        self.authority = TicketAuthority("leonardo", b"secret")
        self.ticket = self.authority.mint()

    def test_valid_claim_accepted(self):
        decision = verify_claim(
            customer_ad(), provider_ad(), self.ticket, self.authority
        )
        assert decision.accepted
        assert decision.verdict is ClaimVerdict.ACCEPTED

    def test_bad_ticket_rejected(self):
        stale = self.ticket
        self.authority.mint()  # rotate: stale ticket no longer valid
        decision = verify_claim(customer_ad(), provider_ad(), stale, self.authority)
        assert decision.verdict is ClaimVerdict.BAD_TICKET

    def test_missing_ticket_rejected_when_required(self):
        decision = verify_claim(customer_ad(), provider_ad(), None, self.authority)
        assert decision.verdict is ClaimVerdict.BAD_TICKET

    def test_ticketless_pool_skips_ticket_check(self):
        decision = verify_claim(customer_ad(), provider_ad(), None, authority=None)
        assert decision.accepted

    def test_stale_state_caught_at_claim_time(self):
        # The match was made when the machine advertised Memory = 64; by
        # claim time the job grew past it.  Claim-time re-verification
        # against *current* state must reject (Section 3.2/4).
        grown_job = customer_ad(Memory=128)
        decision = verify_claim(grown_job, provider_ad(), self.ticket, self.authority)
        assert decision.verdict is ClaimVerdict.CONSTRAINT_VIOLATED

    def test_resource_state_change_caught(self):
        # Owner came back: the RA's current ad now rejects everyone.
        busy = provider_ad()
        busy.set_expr("Constraint", "false")
        decision = verify_claim(customer_ad(), busy, self.ticket, self.authority)
        assert decision.verdict is ClaimVerdict.CONSTRAINT_VIOLATED

    def test_already_claimed_rejected_first(self):
        decision = verify_claim(
            customer_ad(),
            provider_ad(),
            self.ticket,
            self.authority,
            already_claimed=True,
        )
        assert decision.verdict is ClaimVerdict.ALREADY_CLAIMED


class TestRespondToClaim:
    def test_wire_response(self):
        authority = TicketAuthority("leonardo", b"secret")
        ticket = authority.mint()
        request = ClaimRequest(
            sender="schedd@beak",
            recipient="startd@leonardo",
            customer_ad=customer_ad(),
            ticket=ticket,
            match_id=7,
        )
        response = respond_to_claim(request, "startd@leonardo", provider_ad(), authority)
        assert response.accepted
        assert response.match_id == 7
        assert response.recipient == "schedd@beak"
        assert response.reason == "accepted"

    def test_rejection_reason_on_wire(self):
        request = ClaimRequest(
            sender="schedd@beak",
            recipient="startd@leonardo",
            customer_ad=customer_ad(Memory=9999),
            ticket=None,
            match_id=8,
        )
        response = respond_to_claim(request, "startd@leonardo", provider_ad(), None)
        assert not response.accepted
        assert response.reason == "constraint-violated"
