"""The observability acceptance scenario: a recorded ``cm-crash`` run
must yield a complete, self-consistent lifecycle analysis that is
bitwise-identical across two runs with the same seed.

Runs the real CLI end-to-end (``repro chaos --out --trace --series``
then the ``repro obs`` analysis verbs) so the whole recording path —
simulator clocks, deterministic trace ids, schema headers — is under
test, not just the library functions.
"""

import math

import pytest

from repro.cli import main
from repro.obs.causal import check_dag
from repro.obs.causal import read_jsonl as read_trace
from repro.obs.events import read_jsonl as read_events
from repro.obs.lifecycle import build_lifecycles
from repro.obs.timeseries import read_jsonl as read_series


@pytest.fixture(scope="module")
def recorded_runs(tmp_path_factory):
    """Two same-seed cm-crash recordings, all three streams each."""
    runs = []
    for attempt in ("one", "two"):
        base = tmp_path_factory.mktemp(f"run-{attempt}")
        paths = {
            "events": str(base / "events.jsonl"),
            "trace": str(base / "trace.jsonl"),
            "series": str(base / "series.jsonl"),
        }
        code = main(
            ["chaos", "cm-crash", "--machines", "4", "--jobs", "6",
             "--horizon", "1800", "--out", paths["events"],
             "--trace", paths["trace"], "--series", paths["series"]]
        )
        assert code == 0
        runs.append(paths)
    return runs


def render_all_timelines(events_path, capsys):
    lifecycles = build_lifecycles(read_events(events_path))
    chunks = []
    for owner, job_id in sorted(lifecycles, key=str):
        assert main(["obs", "timeline", f"{owner}.{job_id}", events_path]) == 0
        chunks.append(capsys.readouterr().out)
    return "".join(chunks)


class TestDeterminism:
    def test_timelines_bitwise_identical_across_runs(self, recorded_runs, capsys):
        first, second = recorded_runs
        assert render_all_timelines(first["events"], capsys) == render_all_timelines(
            second["events"], capsys
        )

    def test_traces_bitwise_identical_across_runs(self, recorded_runs):
        first, second = recorded_runs
        for stream in ("trace", "series"):
            with open(first[stream]) as a, open(second[stream]) as b:
                assert a.read() == b.read(), f"{stream} stream differs between runs"

    def test_event_streams_identical_modulo_wall_clock(self, recorded_runs):
        # cycle.end carries duration_s, a *wall-clock* measurement — the
        # one legitimately nondeterministic field in a recorded run.
        # Everything else must be bitwise identical.
        import json

        def normalized(path):
            with open(path) as handle:
                for line in handle:
                    record = json.loads(line)
                    record.get("fields", {}).pop("duration_s", None)
                    yield record

        first, second = recorded_runs
        for a, b in zip(normalized(first["events"]), normalized(second["events"])):
            assert a == b


class TestRecordedAnalysis:
    def test_every_job_completes_with_telescoping_dwells(self, recorded_runs):
        lifecycles = build_lifecycles(read_events(recorded_runs[0]["events"]))
        assert len(lifecycles) == 6
        for lifecycle in lifecycles.values():
            assert lifecycle.terminal == "completed"
            dwell_sum = sum(lifecycle.dwell_by_phase().values())
            assert math.isclose(dwell_sum, lifecycle.end_to_end())

    def test_trace_stream_is_connected_per_job(self, recorded_runs):
        spans = read_trace(recorded_runs[0]["trace"])
        grouped = check_dag(spans)
        assert len(grouped) == 6
        for trace_id, trace_spans in grouped.items():
            roots = [s for s in trace_spans if s.parent is None]
            assert len(roots) == 1, f"{trace_id}: expected one root"

    def test_series_sampled_every_cycle(self, recorded_runs):
        samples = read_series(recorded_runs[0]["series"])
        assert samples
        cycles = [s.fields["cycle"] for s in samples]
        assert cycles == sorted(cycles)
        assert all("machines" in s.fields for s in samples)

    def test_critical_path_renders_from_recording(self, recorded_runs, capsys):
        assert main(["obs", "critical-path", "alice.0", recorded_runs[0]["trace"]]) == 0
        out = capsys.readouterr().out
        assert "job.submit" in out
        assert "root→leaf" in out

    def test_latency_json_from_recording(self, recorded_runs, capsys):
        import json

        assert main(["obs", "latency", recorded_runs[0]["events"], "--json"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert table["schema"] == "repro-latency/1"
        assert table["jobs_completed"] == 6
        assert table["duplicate_terminals"] == 0
