"""Unit tests for the deterministic chaos harness (plans + controller)."""

import pytest

from repro.sim import RngStream, Simulator
from repro.sim.chaos import (
    PROFILES,
    ChaosController,
    ChaosPlan,
    CrashWindow,
    DuplicationWindow,
    LossWindow,
    PartitionWindow,
    chaos_profile,
    plan_from_env,
)


class TestPlanValidation:
    def test_empty_plan_is_valid(self):
        ChaosPlan().validate()

    def test_bad_loss_probability_rejected(self):
        plan = ChaosPlan(losses=(LossWindow(0, 10, 1.0),))
        with pytest.raises(ValueError):
            plan.validate()

    def test_empty_window_rejected(self):
        plan = ChaosPlan(losses=(LossWindow(10, 10, 0.5),))
        with pytest.raises(ValueError):
            plan.validate()

    def test_bad_duplication_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(duplications=(DuplicationWindow(0, 10, 0.5, copies=0),)).validate()

    def test_bad_crash_duration_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(crashes=(CrashWindow("cm", 5.0, duration=0.0),)).validate()

    def test_controller_validates_on_construction(self):
        with pytest.raises(ValueError):
            ChaosController(ChaosPlan(losses=(LossWindow(0, 10, -0.1),)))


class TestSendVerdict:
    def test_partition_is_one_directional(self):
        plan = ChaosPlan(
            partitions=(PartitionWindow(0, 100, "startd@*", "collector@*"),)
        )
        ctl = ChaosController(plan)
        assert ctl.send_verdict("startd@m0", "collector@cm", 50.0) == ("partition", 0)
        # The reverse direction flows.
        assert ctl.send_verdict("collector@cm", "startd@m0", 50.0) == (None, 0)

    def test_partition_respects_window(self):
        plan = ChaosPlan(partitions=(PartitionWindow(10, 20, "a", "b"),))
        ctl = ChaosController(plan)
        assert ctl.send_verdict("a", "b", 9.9)[0] is None
        assert ctl.send_verdict("a", "b", 10.0)[0] == "partition"
        assert ctl.send_verdict("a", "b", 20.0)[0] is None  # half-open

    def test_loss_window_rate_statistically(self):
        plan = ChaosPlan(seed=7, losses=(LossWindow(0, 100, 0.3),))
        ctl = ChaosController(plan)
        drops = sum(
            1 for _ in range(2000) if ctl.send_verdict("a", "b", 50.0)[0] == "loss"
        )
        assert 0.2 < drops / 2000 < 0.4

    def test_duplication_yields_copies(self):
        plan = ChaosPlan(seed=3, duplications=(DuplicationWindow(0, 100, 1.0, copies=2),))
        ctl = ChaosController(plan)
        assert ctl.send_verdict("a", "b", 1.0) == (None, 2)
        assert ctl.send_verdict("a", "b", 100.0) == (None, 0)  # outside window

    def test_same_seed_same_verdicts(self):
        plan = ChaosPlan(seed=11, losses=(LossWindow(0, 100, 0.5),))

        def run():
            ctl = ChaosController(plan)
            return [ctl.send_verdict("a", "b", 1.0)[0] for _ in range(100)]

        assert run() == run()

    def test_forked_rng_does_not_draw_from_parent(self):
        parent = RngStream(5)
        before = parent.uniform(0, 1)
        parent2 = RngStream(5)
        ChaosController(ChaosPlan(seed=0), rng=parent2).send_verdict("a", "b", 0.0)
        assert parent2.uniform(0, 1) == before


class TestCrashSchedule:
    def test_crash_hooks_fire_on_schedule(self):
        sim = Simulator()
        calls = []

        class FakeNet:
            def install_chaos(self, ctl):
                pass

        plan = ChaosPlan(crashes=(CrashWindow("cm", 10.0, duration=5.0),))
        ctl = ChaosController(plan)
        ctl.arm(
            sim,
            FakeNet(),
            crash_hooks={
                "cm": (lambda: calls.append(("crash", sim.now)),
                       lambda: calls.append(("restart", sim.now)))
            },
        )
        sim.run_until(100.0)
        assert calls == [("crash", 10.0), ("restart", 15.0)]

    def test_pattern_target_matches_multiple_hooks(self):
        sim = Simulator()
        crashed = []

        class FakeNet:
            def install_chaos(self, ctl):
                pass

        plan = ChaosPlan(crashes=(CrashWindow("startd@*", 1.0),))
        ctl = ChaosController(plan)
        ctl.arm(
            sim,
            FakeNet(),
            crash_hooks={
                "startd@m0": (lambda: crashed.append("m0"), lambda: None),
                "startd@m1": (lambda: crashed.append("m1"), lambda: None),
                "cm": (lambda: crashed.append("cm"), lambda: None),
            },
        )
        sim.run_until(2.0)
        assert sorted(crashed) == ["m0", "m1"]

    def test_unknown_target_downs_the_address(self):
        sim = Simulator()
        downed = []

        class FakeNet:
            def install_chaos(self, ctl):
                pass

            def set_down(self, address, down=True):
                downed.append((address, down))

        plan = ChaosPlan(crashes=(CrashWindow("ghost@x", 1.0, duration=2.0),))
        ChaosController(plan).arm(sim, FakeNet())
        sim.run_until(5.0)
        assert downed == [("ghost@x", True), ("ghost@x", False)]


class TestProfiles:
    def test_all_profiles_valid(self):
        for name in PROFILES:
            plan = chaos_profile(name, horizon=1000.0)
            plan.validate()
            assert plan.name == name

    def test_profiles_scale_with_horizon(self):
        small = chaos_profile("cm-crash", horizon=100.0)
        large = chaos_profile("cm-crash", horizon=1000.0)
        assert small.crashes[0].at * 10 == pytest.approx(large.crashes[0].at)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            chaos_profile("mayhem")

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            chaos_profile("lossy", horizon=0.0)


class TestEnvHook:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert plan_from_env() is None

    def test_profile_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "lossy")
        plan = plan_from_env(horizon=500.0)
        assert plan.name == "lossy"
        assert plan.seed == 101

    def test_seed_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "partition:99")
        plan = plan_from_env()
        assert plan.name == "partition"
        assert plan.seed == 99
