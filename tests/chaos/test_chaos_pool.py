"""End-to-end chaos runs: every named profile must deliver all jobs and
leave a recorded event stream that passes the protocol invariants.

This is the acceptance scenario of the robustness work: sustained loss,
duplication, asymmetric partitions, a mid-run central-manager outage,
and a machine crash — and still no lost jobs, no double-booked
machines, no double-claimed jobs, deterministically per seed.
"""

import pytest

from repro import obs
from repro.condor import CondorPool, Job, MachineSpec, PoolConfig
from repro.obs.invariants import check_events
from repro.sim.chaos import PROFILES, chaos_profile


def run_profile(name, horizon=3600.0, machines=5, jobs=12):
    """One recorded pool run under profile *name*; returns
    (pool, completion_time, recorded_events)."""
    plan = chaos_profile(name, horizon=horizon)
    obs.reset()
    obs.enable(events=True)
    try:
        specs = [
            MachineSpec(name=f"m{i}", mips=100.0 + 50.0 * (i % 3))
            for i in range(machines)
        ]
        pool = CondorPool(
            specs,
            config=PoolConfig(
                seed=plan.seed,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                chaos=plan,
                chaos_horizon=horizon,
            ),
        )
        batch = [
            Job(
                job_id=j,
                owner="alice" if j % 2 == 0 else "bob",
                total_work=600.0 + 60.0 * (j % 5),
            )
            for j in range(jobs)
        ]
        pool.submit_all(batch, arrival_times=[5.0 * j for j in range(len(batch))])
        finished = pool.run_until_quiescent(check_interval=60.0, max_time=8.0 * horizon)
        events = list(obs.event_log.events())
    finally:
        obs.disable()
        obs.reset()
    return pool, finished, events


class TestProfilesComplete:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_all_jobs_complete_and_invariants_hold(self, profile):
        pool, finished, events = run_profile(profile)
        batch = pool.jobs()
        assert all(job.done for job in batch), (
            f"{sum(not j.done for j in batch)} job(s) stranded under "
            f"{profile} at t={finished}"
        )
        report = check_events(events, require_complete=True)
        assert report.ok, "\n".join(str(v) for v in report.violations)

    def test_chaos_actually_injected_faults(self):
        pool, _, events = run_profile("partition")
        assert pool.net.stats.dropped_partition > 0
        assert pool.net.stats.duplicated > 0
        kinds = {e.kind for e in events}
        assert "net.partition" in kinds

    def test_cm_crash_profile_crashes_daemons(self):
        pool, _, events = run_profile("cm-crash")
        crash_targets = {
            e.fields.get("target") for e in events if e.kind == "chaos.crash"
        }
        assert crash_targets == {"cm", "startd@m0"}
        assert any(e.kind == "machine-crash" for e in events)


class TestDeterminism:
    def test_same_profile_same_seed_same_run(self):
        pool_a, finished_a, events_a = run_profile("lossy")
        pool_b, finished_b, events_b = run_profile("lossy")
        assert finished_a == finished_b
        assert pool_a.net.stats == pool_b.net.stats
        assert [(e.t, e.kind) for e in events_a] == [(e.t, e.kind) for e in events_b]

    def test_env_hook_drives_the_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "lossy")
        pool = CondorPool(
            [MachineSpec(name="m0")],
            config=PoolConfig(seed=1, chaos=None),
        )
        assert pool.chaos is not None
        assert pool.chaos.plan.name == "lossy"

    def test_chaos_false_suppresses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "lossy")
        pool = CondorPool(
            [MachineSpec(name="m0")],
            config=PoolConfig(seed=1, chaos=False),
        )
        assert pool.chaos is None
