"""Protocol hardening under a lying network: retransmission, duplicate
suppression, claim leases, and the REPRO_NO_RETRY kill-switch.

These tests drive the agents directly (no chaos plan) to pin down each
hardening mechanism in isolation; tests/chaos/test_chaos_pool.py then
exercises them all together under the named fault profiles.
"""

import pytest

from repro.condor import CondorPool, Job, MachineSpec, MachineState, PoolConfig
from repro.condor.machine import MachineAgent
from repro.condor.schedd import CustomerAgent
from repro.protocols import (
    BackoffPolicy,
    ClaimRequest,
    MatchNotification,
    Retransmitter,
    retries_enabled,
    set_retries,
)
from repro.sim import Network, RngStream, Simulator


@pytest.fixture()
def retries_on():
    """Guarantee the kill-switch state is restored after a test."""
    set_retries(True)
    yield
    set_retries(None)


class TestBackoffPolicy:
    def test_delays_grow_and_cap(self):
        policy = BackoffPolicy(base=5.0, factor=2.0, cap=12.0, jitter=0.0, max_tries=5)
        assert policy.delay(0) == 5.0
        assert policy.delay(1) == 10.0
        assert policy.delay(2) == 12.0  # capped
        assert policy.delay(3) == 12.0

    def test_jitter_stays_bounded_and_deterministic(self):
        policy = BackoffPolicy(base=10.0, factor=1.0, cap=10.0, jitter=0.5, max_tries=3)
        a = [policy.delay(0, rng=RngStream(4)) for _ in range(5)]
        b = [policy.delay(0, rng=RngStream(4)) for _ in range(5)]
        assert a == b
        assert all(10.0 <= d <= 15.0 for d in a)


class TestRetransmitter:
    def make(self, policy):
        sim = Simulator()
        net = Network(sim, latency=0.01)
        inbox = []
        net.register("b", inbox.append)
        return sim, net, inbox, Retransmitter(sim, net, policy=policy)

    @pytest.mark.usefixtures("retries_on")
    def test_retransmits_until_exhausted(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.0, max_tries=3)
        sim, net, inbox, retx = self.make(policy)
        retx.send(ClaimRequest(sender="a", recipient="b", customer_ad=None, ticket=None, match_id=1))
        sim.run_until(100.0)
        assert len(inbox) == 4  # original + 3 retries

    @pytest.mark.usefixtures("retries_on")
    def test_stop_when_halts_retries(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.0, max_tries=5)
        sim, net, inbox, retx = self.make(policy)
        done = []
        retx.send(
            ClaimRequest(sender="a", recipient="b", customer_ad=None, ticket=None, match_id=1),
            stop_when=lambda: bool(done),
        )
        sim.schedule_at(1.5, lambda: done.append(True))
        sim.run_until(100.0)
        assert len(inbox) == 2  # original + the one retry before stop_when

    def test_kill_switch_sends_exactly_once(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.0, max_tries=5)
        sim, net, inbox, retx = self.make(policy)
        set_retries(False)
        try:
            retx.send(ClaimRequest(sender="a", recipient="b", customer_ad=None, ticket=None, match_id=1))
            sim.run_until(100.0)
        finally:
            set_retries(None)
        assert len(inbox) == 1

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_RETRY", "1")
        set_retries(None)  # re-read the environment
        try:
            assert not retries_enabled()
        finally:
            monkeypatch.delenv("REPRO_NO_RETRY")
            set_retries(None)
        assert retries_enabled()


def make_claimed_machine(claim_lease=120.0, match_id=77, total_work=100_000.0):
    """A machine agent with one established claim from a fake schedd."""
    sim = Simulator()
    net = Network(sim, rng=RngStream(1), latency=0.01)
    net.register("collector@cm", lambda m: None)
    inbox = []
    net.register("schedd@alice", inbox.append)
    agent = MachineAgent(
        sim, net, MachineSpec(name="m0"), collector_address="collector@cm",
        rng=RngStream(2),
    )
    agent.claim_lease = claim_lease
    agent.start()
    sim.run_until(1.0)
    job = Job(owner="alice", total_work=total_work)
    request = ClaimRequest(
        sender="schedd@alice",
        recipient=agent.address,
        customer_ad=job.to_classad("schedd@alice", sim.now),
        ticket=agent.authority.current,
        match_id=match_id,
    )
    net.send(request)
    sim.run_until(2.0)
    assert agent.state is MachineState.CLAIMED
    return sim, net, agent, inbox, request


class TestDuplicateSuppression:
    def test_duplicate_claim_request_replays_the_accept(self):
        # A duplicated ClaimRequest must NOT be answered ALREADY_CLAIMED
        # against the very claim it created (nor rejected for its
        # consumed ticket) — the original verdict is replayed.
        sim, net, agent, inbox, request = make_claimed_machine()
        net.send(request)  # the network's duplicate
        sim.run_until(3.0)
        from repro.protocols import ClaimResponse

        responses = [m for m in inbox if isinstance(m, ClaimResponse)]
        assert len(responses) == 2
        assert all(r.accepted for r in responses)
        assert agent.claims_accepted == 1  # counted once, not twice

    def test_stale_accept_replay_downgraded(self):
        # Replaying an accept after the claim ended must not pretend the
        # job is still running there.
        sim, net, agent, inbox, request = make_claimed_machine(total_work=50.0)
        sim.run_until(200.0)  # job (50 ref-seconds at 100 MIPS) completes
        assert agent.claim is None
        inbox.clear()
        net.send(request)  # very late duplicate
        sim.run_until(250.0)
        from repro.protocols import ClaimResponse

        responses = [m for m in inbox if isinstance(m, ClaimResponse)]
        assert len(responses) == 1
        assert not responses[0].accepted
        assert responses[0].reason == "stale-claim"

    def test_duplicate_match_notification_yields_one_claim_request(self):
        sim = Simulator()
        net = Network(sim, latency=0.01)
        net.register("collector@cm", lambda m: None)
        machine_inbox = []
        net.register("startd@m0", machine_inbox.append)
        ca = CustomerAgent(
            sim, net, "alice", collector_address="collector@cm", rng=RngStream(3)
        )
        ca.start()
        job = Job(owner="alice", total_work=600.0)
        ca.submit(job)
        sim.run_until(1.0)
        scratch = Simulator()
        provider_ad = MachineAgent(
            scratch, Network(scratch), MachineSpec(name="m0"), collector_address="x"
        ).build_ad()
        notification = MatchNotification(
            sender="negotiator@cm",
            recipient=ca.address,
            peer_address="startd@m0",
            peer_ad=provider_ad,
            my_ad=job.to_classad(ca.address, sim.now),
            match_id=42,
        )
        net.send(notification)
        net.send(notification)  # duplicated in flight
        sim.run_until(3.0)
        requests = [m for m in machine_inbox if isinstance(m, ClaimRequest)]
        assert len(requests) == 1


class TestLeaseProtocol:
    def make_pool(self, **config_kwargs):
        specs = [MachineSpec(name=f"m{i}") for i in range(2)]
        pool = CondorPool(
            specs,
            config=PoolConfig(
                seed=5,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                chaos=False,
                **config_kwargs,
            ),
        )
        return pool

    @pytest.mark.usefixtures("retries_on")
    def test_machine_crash_recovered_via_lease(self):
        # The machine dies mid-claim and never says goodbye; the CA must
        # notice (lease NACK after restart, or renewal silence) and
        # re-run the job elsewhere.
        pool = self.make_pool()
        job = Job(job_id=1, owner="alice", total_work=2_000.0)
        pool.submit(job)
        pool.start()
        pool.sim.run_until(120.0)
        assert job.state.name == "RUNNING"
        machine = pool.machines[job.running_on]
        machine.crash()
        pool.sim.schedule_at(400.0, machine.restart)
        finished = pool.run_until_quiescent(check_interval=60.0, max_time=20_000.0)
        assert job.done, f"job stranded in {job.state} at t={finished}"
        assert job.restarts >= 1

    def test_no_retry_strands_the_job_after_machine_crash(self):
        # Same scenario with the kill-switch thrown: nobody ever notices
        # the dead claim, the job hangs in RUNNING forever.
        pool = self.make_pool()
        job = Job(job_id=1, owner="alice", total_work=2_000.0)
        pool.submit(job)
        set_retries(False)
        try:
            pool.start()
            pool.sim.run_until(120.0)
            assert job.state.name == "RUNNING"
            machine = pool.machines[job.running_on]
            machine.crash()
            pool.sim.schedule_at(400.0, machine.restart)
            pool.sim.run_until(30_000.0)
        finally:
            set_retries(None)
        assert not job.done
        assert job.state.name == "RUNNING"  # stranded, demonstrably

    @pytest.mark.usefixtures("retries_on")
    def test_lease_renewals_extend_the_claim(self):
        sim, net, agent, inbox, request = make_claimed_machine(claim_lease=120.0)
        from repro.condor.messages import KeepAlive, LeaseAck

        sim.every(
            60.0,
            lambda: net.send(
                KeepAlive(sender="schedd@alice", recipient=agent.address, match_id=77)
            ),
        )
        sim.run_until(1_000.0)
        assert agent.state is MachineState.CLAIMED
        acks = [m for m in inbox if isinstance(m, LeaseAck)]
        assert acks and all(ack.ok for ack in acks)

    @pytest.mark.usefixtures("retries_on")
    def test_keepalive_for_unknown_claim_nacked(self):
        sim, net, agent, inbox, request = make_claimed_machine(claim_lease=120.0)
        from repro.condor.messages import KeepAlive, LeaseAck

        inbox.clear()
        net.send(
            KeepAlive(sender="schedd@alice", recipient=agent.address, match_id=999)
        )
        sim.run_until(3.0)
        nacks = [m for m in inbox if isinstance(m, LeaseAck) and not m.ok]
        assert len(nacks) == 1
        assert nacks[0].match_id == 999
