"""Unit tests for the static-queue baseline (S18)."""

import pytest

from repro.baselines import QueueBasedScheduler, UnknownQueueError
from repro.condor import Job, MachineSpec
from repro.condor.machine import OwnerModel


class ScriptedOwner(OwnerModel):
    def __init__(self, first_arrival, active_for):
        self.first_arrival = first_arrival
        self.active_for = active_for

    def first_event(self, rng):
        return False, self.first_arrival

    def active_duration(self, rng):
        return self.active_for

    def idle_duration(self, rng):
        return 1e12


def build(n_intel=2, n_sparc=2):
    system = QueueBasedScheduler(seed=3)
    for i in range(n_intel):
        system.add_machine(MachineSpec(name=f"intel{i}", arch="INTEL"))
    for i in range(n_sparc):
        system.add_machine(MachineSpec(name=f"sparc{i}", arch="SPARC"))
    system.add_queue("q_intel", [f"intel{i}" for i in range(n_intel)])
    system.add_queue("q_sparc", [f"sparc{i}" for i in range(n_sparc)])
    return system


class TestSubmission:
    def test_unknown_queue_rejected(self):
        system = build()
        with pytest.raises(UnknownQueueError):
            system.submit(Job(owner="a", total_work=10), "nonexistent")

    def test_job_runs_on_queue_machine(self):
        system = build()
        job = Job(owner="a", total_work=100.0)
        system.submit(job, "q_intel")
        system.run_until_quiescent(check_interval=60.0, max_time=10_000.0)
        assert job.done
        assert system.metrics.jobs_completed == 1

    def test_fcfs_order_within_queue(self):
        system = build(n_intel=1, n_sparc=0)
        first = Job(owner="a", total_work=100.0)
        second = Job(owner="b", total_work=100.0)
        system.submit(first, "q_intel")
        system.submit(second, "q_intel")
        system.run_until_quiescent(check_interval=10.0, max_time=10_000.0)
        assert first.completion_time < second.completion_time

    def test_scheduled_arrival(self):
        system = build()
        job = Job(owner="a", total_work=50.0)
        system.submit(job, "q_intel", at=500.0)
        system.run_until_quiescent(check_interval=60.0, max_time=10_000.0)
        assert job.submit_time == 500.0
        assert job.done


class TestStaticBinding:
    def test_job_never_uses_other_queues_machines(self):
        """The core criticism: q_intel backlog cannot spill onto idle
        SPARC machines even if it wanted to — and an INTEL job queued on
        q_sparc never runs at all."""
        system = build(n_intel=1, n_sparc=4)
        jobs = [Job(owner="a", total_work=600.0) for _ in range(6)]
        for job in jobs:
            system.submit(job, "q_intel")
        system.run_until(1_800.0)
        # Only the single intel machine ever served them: ≤3 completions
        # in 1800s of 600s jobs.
        assert system.metrics.jobs_completed <= 3
        assert all(j.running_on in (None, "intel0") for j in jobs)

    def test_misqueued_job_starves(self):
        system = build()
        wrong = Job(owner="a", total_work=10.0, req_arch="INTEL")
        system.submit(wrong, "q_sparc")  # user picked the wrong queue
        system.run_until(10_000.0)
        assert not wrong.done
        assert wrong.first_start_time is None

    def test_unplaceable_job_does_not_block_queue(self):
        system = build(n_intel=1, n_sparc=0)
        big = Job(owner="a", total_work=10.0, memory=4096)  # fits nothing
        small = Job(owner="b", total_work=10.0)
        system.submit(big, "q_intel")
        system.submit(small, "q_intel")
        system.run_until_quiescent(check_interval=10.0, max_time=1_000.0)
        assert small.done
        assert not big.done


class TestOwnerEviction:
    def test_eviction_requeues_at_front(self):
        system = QueueBasedScheduler(seed=5)
        system.add_machine(
            MachineSpec(name="m0"), owner_model=ScriptedOwner(200.0, 100.0)
        )
        system.add_queue("q", ["m0"])
        victim = Job(owner="a", total_work=600.0, want_checkpoint=True)
        queued = Job(owner="b", total_work=100.0)
        system.submit(victim, "q")
        system.submit(queued, "q")
        system.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert victim.done and queued.done
        assert victim.evictions == 1
        # Front-of-queue requeue: the victim resumes before the later job.
        assert victim.completion_time < queued.completion_time

    def test_checkpoint_semantics_match_condor(self):
        system = QueueBasedScheduler(seed=5)
        system.add_machine(
            MachineSpec(name="m0"), owner_model=ScriptedOwner(200.0, 100.0)
        )
        system.add_queue("q", ["m0"])
        job = Job(owner="a", total_work=600.0, want_checkpoint=False)
        system.submit(job, "q")
        system.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert job.done
        assert system.metrics.badput == pytest.approx(200.0, abs=2.0)
