"""Unit tests for the centralized system-model baseline (S19)."""

import pytest

from repro.baselines import CentralAllocator
from repro.condor import Job, MachineSpec, PoissonOwner
from repro.condor.machine import OwnerModel


class ScriptedOwner(OwnerModel):
    def __init__(self, first_arrival, active_for):
        self.first_arrival = first_arrival
        self.active_for = active_for

    def first_event(self, rng):
        return False, self.first_arrival

    def active_duration(self, rng):
        return self.active_for

    def idle_duration(self, rng):
        return 1e12


class TestParticipation:
    def test_owned_machines_refused_by_default(self):
        system = CentralAllocator(seed=1)
        assert system.add_machine(MachineSpec(name="dedicated")) is not None
        refused = system.add_machine(
            MachineSpec(name="personal"), owner_model=PoissonOwner()
        )
        assert refused is None
        assert list(system.machines) == ["dedicated"]

    def test_owned_machines_admitted_in_ablation_variant(self):
        system = CentralAllocator(seed=1, include_owned_machines=True)
        system.add_machine(MachineSpec(name="personal"), owner_model=PoissonOwner())
        assert "personal" in system.machines


class TestScheduling:
    def test_global_fcfs_over_compatible_machines(self):
        system = CentralAllocator(seed=2)
        system.add_machine(MachineSpec(name="intel0", arch="INTEL"))
        system.add_machine(MachineSpec(name="sparc0", arch="SPARC"))
        intel_job = Job(owner="a", total_work=100.0, req_arch="INTEL")
        sparc_job = Job(owner="a", total_work=100.0, req_arch="SPARC")
        system.submit(intel_job)
        system.submit(sparc_job)
        system.run_until_quiescent(check_interval=30.0, max_time=10_000.0)
        assert intel_job.running_on is None and intel_job.done
        assert sparc_job.done
        assert system.metrics.jobs_completed == 2

    def test_incompatible_job_waits_forever(self):
        system = CentralAllocator(seed=2)
        system.add_machine(MachineSpec(name="intel0", arch="INTEL"))
        job = Job(owner="a", total_work=10.0, req_arch="ALPHA")
        system.submit(job)
        system.run_until(10_000.0)
        assert not job.done

    def test_backlog_drains_in_order(self):
        system = CentralAllocator(seed=2)
        system.add_machine(MachineSpec(name="m0"))
        jobs = [Job(owner="a", total_work=100.0) for _ in range(3)]
        for job in jobs:
            system.submit(job)
        system.run_until_quiescent(check_interval=30.0, max_time=10_000.0)
        times = [j.completion_time for j in jobs]
        assert times == sorted(times)


class TestAngryOwners:
    def test_owner_arrival_kills_job_without_checkpoint(self):
        """In the ablation variant the model ignores owners, so a
        returning owner destroys all progress — even for jobs that would
        checkpoint under Condor."""
        system = CentralAllocator(seed=3, include_owned_machines=True)
        system.add_machine(
            MachineSpec(name="m0"), owner_model=ScriptedOwner(200.0, 100.0)
        )
        job = Job(owner="a", total_work=600.0, want_checkpoint=True)
        system.submit(job)
        system.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert job.done
        assert job.restarts == 1
        assert system.metrics.badput == pytest.approx(200.0, abs=2.0)
        assert job.completed_work == 0.0 or job.done
