"""Unit + property tests for the DES kernel (S12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start=100.0)
        seen = []
        sim.schedule_at(150.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [150.0]

    def test_scheduling_into_past_rejected(self):
        sim = Simulator(start=10.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_zero_delay_event_fires_at_same_time(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: log.append(sim.now)))
        sim.run()
        assert log == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        sim.cancel(handle)
        sim.run()
        assert log == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        sim.cancel(handle)
        assert sim.pending() == 1


class TestRunUntil:
    def test_runs_inclusive_boundary(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append(5))
        sim.schedule(10.0, lambda: log.append(10))
        sim.schedule(10.5, lambda: log.append(10.5))
        sim.run_until(10.0)
        assert log == [5, 10]
        assert sim.now == 10.0

    def test_clock_lands_on_horizon_with_no_events(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_remaining_events_still_pending(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run_until(50.0)
        assert sim.pending() == 1

    def test_run_max_events(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending() == 6


class TestPeriodicTask:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_custom_start_delay(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_delay=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_stop_halts_firings(self):
        sim = Simulator()
        task = sim.every(10.0, lambda: None)
        sim.schedule(25.0, task.stop)
        sim.run_until(100.0)
        assert task.firings == 2

    def test_callback_may_stop_its_own_task(self):
        sim = Simulator()
        fired = []

        def once():
            fired.append(sim.now)
            task.stop()

        task = sim.every(5.0, once)
        sim.run_until(50.0)
        assert fired == [5.0]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Simulator().every(0.0, lambda: None)


class TestCausalityProperty:
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_processing_order_is_nondecreasing(self, delays):
        sim = Simulator()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.events_processed == len(delays)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_nested_scheduling_preserves_causality(self, pairs):
        sim = Simulator()
        seen = []
        for first, second in pairs:
            sim.schedule(
                first,
                lambda d=second: sim.schedule(d, lambda: seen.append(sim.now)),
            )
        sim.run()
        assert seen == sorted(seen)
