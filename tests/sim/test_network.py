"""Unit tests for the simulated network (S13)."""

from dataclasses import dataclass

import pytest

from repro.sim import Network, RngStream, Simulator


@dataclass(frozen=True)
class Ping:
    sender: str
    recipient: str
    payload: int = 0


class TestDelivery:
    def test_basic_delivery_after_latency(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        inbox = []
        net.register("b", inbox.append)
        net.send(Ping("a", "b", 1))
        sim.run()
        assert [m.payload for m in inbox] == [1]
        assert sim.now == pytest.approx(0.1)

    def test_delivery_order_without_jitter_is_fifo(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        inbox = []
        net.register("b", inbox.append)
        for i in range(5):
            net.send(Ping("a", "b", i))
        sim.run()
        assert [m.payload for m in inbox] == [0, 1, 2, 3, 4]

    def test_jitter_can_reorder(self):
        # With jitter much larger than spacing, some pair must reorder.
        sim = Simulator()
        net = Network(sim, rng=RngStream(7), latency=0.01, jitter=5.0)
        inbox = []
        net.register("b", inbox.append)
        for i in range(20):
            net.send(Ping("a", "b", i))
        sim.run()
        payloads = [m.payload for m in inbox]
        assert sorted(payloads) == list(range(20))
        assert payloads != list(range(20))

    def test_unknown_recipient_dropped(self):
        sim = Simulator()
        net = Network(sim)
        net.send(Ping("a", "nowhere"))
        sim.run()
        assert net.stats.dropped_no_recipient == 1
        assert net.stats.delivered == 0


class TestLoss:
    def test_loss_rate_respected_statistically(self):
        sim = Simulator()
        net = Network(sim, rng=RngStream(42), loss=0.3)
        inbox = []
        net.register("b", inbox.append)
        for i in range(1000):
            net.send(Ping("a", "b", i))
        sim.run()
        assert net.stats.dropped_loss + net.stats.delivered == 1000
        assert 0.2 < net.stats.dropped_loss / 1000 < 0.4

    def test_zero_loss_delivers_everything(self):
        sim = Simulator()
        net = Network(sim, loss=0.0)
        inbox = []
        net.register("b", inbox.append)
        for i in range(100):
            net.send(Ping("a", "b", i))
        sim.run()
        assert len(inbox) == 100

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), loss=1.0)
        with pytest.raises(ValueError):
            Network(Simulator(), loss=-0.1)

    def test_determinism_across_runs(self):
        def run():
            sim = Simulator()
            net = Network(sim, rng=RngStream(9), loss=0.5)
            inbox = []
            net.register("b", inbox.append)
            for i in range(50):
                net.send(Ping("a", "b", i))
            sim.run()
            return [m.payload for m in inbox]

        assert run() == run()


class TestCrashes:
    def test_messages_to_down_node_lost(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        inbox = []
        net.register("b", inbox.append)
        net.set_down("b")
        net.send(Ping("a", "b"))
        sim.run()
        assert inbox == []
        assert net.stats.dropped_down == 1

    def test_revived_node_receives_again(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        inbox = []
        net.register("b", inbox.append)
        net.set_down("b")
        net.send(Ping("a", "b", 1))
        sim.run()
        net.set_down("b", down=False)
        net.send(Ping("a", "b", 2))
        sim.run()
        assert [m.payload for m in inbox] == [2]

    def test_crash_mid_flight_loses_message(self):
        sim = Simulator()
        net = Network(sim, latency=1.0)
        inbox = []
        net.register("b", inbox.append)
        net.send(Ping("a", "b", 1))  # in flight until t=1
        sim.schedule(0.5, lambda: net.set_down("b"))
        sim.run()
        assert inbox == []

    def test_register_revives(self):
        sim = Simulator()
        net = Network(sim)
        net.set_down("b")
        net.register("b", lambda m: None)
        assert not net.is_down("b")


class TestStatsDropAccounting:
    def test_every_drop_path_has_its_own_counter(self):
        sim = Simulator()
        net = Network(sim, rng=RngStream(3), latency=0.01)
        net.register("b", lambda m: None)
        net.set_down("b")
        net.send(Ping("a", "b"))       # recipient down
        net.send(Ping("a", "ghost"))   # no such recipient
        sim.run()
        assert net.stats.dropped_down == 1
        assert net.stats.dropped_no_recipient == 1
        assert net.stats.dropped_loss == 0
        assert net.stats.delivered == 0

    def test_sender_down_counts_as_down_drop(self):
        sim = Simulator()
        net = Network(sim, latency=0.01)
        inbox = []
        net.register("b", inbox.append)
        net.set_down("a")
        net.send(Ping("a", "b"))
        sim.run()
        assert inbox == []
        assert net.stats.dropped_down == 1


class TestChaosFabric:
    def make(self, plan):
        from repro.sim.chaos import ChaosController

        sim = Simulator()
        net = Network(sim, rng=RngStream(8), latency=0.01)
        inbox = []
        net.register("b", inbox.append)
        ChaosController(plan).arm(sim, net)
        return sim, net, inbox

    def test_partition_drops_and_counts(self):
        from repro.sim.chaos import ChaosPlan, PartitionWindow

        sim, net, inbox = self.make(
            ChaosPlan(partitions=(PartitionWindow(0, 100, "a", "b"),))
        )
        for _ in range(5):
            net.send(Ping("a", "b"))
        net.send(Ping("c", "b"))  # unmatched sender flows
        sim.run()
        assert net.stats.dropped_partition == 5
        assert len(inbox) == 1

    def test_duplication_delivers_extra_copies(self):
        from repro.sim.chaos import ChaosPlan, DuplicationWindow

        sim, net, inbox = self.make(
            ChaosPlan(duplications=(DuplicationWindow(0, 100, 1.0, copies=2),))
        )
        net.send(Ping("a", "b", 7))
        sim.run()
        assert net.stats.duplicated == 2
        assert [m.payload for m in inbox] == [7, 7, 7]

    def test_chaos_loss_counts_in_dropped_loss(self):
        from repro.sim.chaos import ChaosPlan, LossWindow

        sim, net, inbox = self.make(
            ChaosPlan(seed=4, losses=(LossWindow(0, 100, 0.5),))
        )
        for i in range(200):
            net.send(Ping("a", "b", i))
        sim.run()
        assert net.stats.dropped_loss + net.stats.delivered == 200
        assert 60 < net.stats.dropped_loss < 140
