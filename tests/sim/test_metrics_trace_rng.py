"""Unit tests for metrics, tracing and RNG streams (S23, S12)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PoolMetrics, RngStream, RunningStats, Trace, UtilizationTracker


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.minimum == s.maximum == 5.0

    def test_known_values(self):
        s = RunningStats()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            s.add(v)
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(2.138, abs=1e-3)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_batch_computation(self, values):
        s = RunningStats()
        for v in values:
            s.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-6)
        assert s.minimum == min(values)
        assert s.maximum == max(values)


class TestPoolMetrics:
    def test_rates(self):
        m = PoolMetrics()
        m.jobs_submitted = 10
        m.jobs_completed = 7
        m.claims_attempted = 20
        m.record_claim_rejection("bad-ticket")
        m.record_claim_rejection("constraint-violated")
        m.record_claim_rejection("constraint-violated")
        assert m.completion_rate == pytest.approx(0.7)
        assert m.claim_rejection_rate == pytest.approx(3 / 20)
        assert m.claim_rejections_by_reason["constraint-violated"] == 2

    def test_goodput_fraction(self):
        m = PoolMetrics()
        m.goodput = 900.0
        m.badput = 100.0
        assert m.goodput_fraction == pytest.approx(0.9)

    def test_zero_division_guards(self):
        m = PoolMetrics()
        assert m.completion_rate == 0.0
        assert m.claim_rejection_rate == 0.0
        assert m.goodput_fraction == 0.0

    def test_summary_renders(self):
        m = PoolMetrics()
        m.jobs_submitted = 1
        m.record_claim_rejection("bad-ticket")
        text = m.summary()
        assert "jobs completed" in text
        assert "bad-ticket=1" in text


class TestUtilizationTracker:
    def test_half_busy_pool(self):
        u = UtilizationTracker(capacity=2)
        u.claim(0.0)
        assert u.utilization(10.0) == pytest.approx(0.5)

    def test_claim_release_cycle(self):
        u = UtilizationTracker(capacity=1)
        u.claim(0.0)
        u.release(5.0)
        assert u.utilization(10.0) == pytest.approx(0.5)

    def test_over_claim_rejected(self):
        u = UtilizationTracker(capacity=1)
        u.claim(0.0)
        with pytest.raises(ValueError):
            u.claim(1.0)

    def test_release_without_claim_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTracker(capacity=1).release(1.0)


class TestTrace:
    def test_emit_and_filter(self):
        t = Trace()
        t.emit(1.0, "advertise", name="m1")
        t.emit(2.0, "match", job="j1")
        t.emit(3.0, "advertise", name="m2")
        assert t.count("advertise") == 2
        assert len(t.of_kind("advertise", "match")) == 3
        assert t.first("advertise").fields["name"] == "m1"
        assert t.last("advertise").fields["name"] == "m2"

    def test_disabled_trace_collects_nothing(self):
        t = Trace(enabled=False)
        t.emit(1.0, "x")
        assert len(t) == 0

    def test_kinds_in_first_appearance_order(self):
        t = Trace()
        for kind in ["b", "a", "b", "c", "a"]:
            t.emit(0.0, kind)
        assert t.kinds() == ["b", "a", "c"]

    def test_between(self):
        t = Trace()
        for i in range(5):
            t.emit(float(i), "tick")
        assert len(t.between(1.0, 3.0)) == 3

    def test_render(self):
        t = Trace()
        t.emit(1.5, "match", job="j1", machine="m1")
        text = t.render()
        assert "match" in text and "job=j1" in text


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(1).fork("x")
        b = RngStream(1).fork("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_forks_are_independent(self):
        root = RngStream(1)
        a = root.fork("a")
        b = root.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_paths_compose(self):
        assert (
            RngStream(1).fork("a").fork("b").random()
            == RngStream(1, "root/a/b").random()
        )

    def test_adding_consumer_does_not_disturb_existing_stream(self):
        root1 = RngStream(3)
        s1 = root1.fork("workload")
        first = [s1.random() for _ in range(3)]

        root2 = RngStream(3)
        _extra = root2.fork("new-subsystem")  # new consumer forked first
        s2 = root2.fork("workload")
        assert [s2.random() for _ in range(3)] == first

    def test_bernoulli_bounds(self):
        s = RngStream(5)
        assert not any(s.bernoulli(0.0) for _ in range(100))
        assert all(s.bernoulli(1.0) for _ in range(100))

    def test_expovariate_positive(self):
        s = RngStream(6)
        assert all(s.expovariate(0.1) > 0 for _ in range(100))
