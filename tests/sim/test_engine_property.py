"""Differential property suite for the two DES kernels.

The fast bucketed kernel (the default) and the reference heap
(``REPRO_NO_FASTKERNEL=1``) must be observationally identical: same
firing order, same clock, same ``pending()`` counts, for *any*
interleaving of ``schedule`` / ``schedule_at`` / ``cancel`` / ``every``
/ ``step`` — including operations issued from inside callbacks, which
is where the bucket's re-open edge cases live.  Hypothesis drives the
same randomly generated program through both kernels and compares every
observable after every operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


class Driver:
    """Interprets one operation program against one kernel, recording
    every observable (firings, clock, pending counts) in a log."""

    def __init__(self, fast: bool):
        self.sim = Simulator(fast=fast)
        self.log = []
        self.handles = []
        self.tasks = []

    def apply(self, op):
        sim = self.sim
        kind = op[0]
        if kind == "schedule":
            self.handles.append(sim.schedule(op[1], self._fire, op[2]))
        elif kind == "schedule_at":
            self.handles.append(sim.schedule_at(sim.now + op[1], self._fire, op[2]))
        elif kind == "schedule_noarg":
            self.handles.append(sim.schedule(op[1], self._fire_noarg))
        elif kind == "cancel":
            if self.handles:
                sim.cancel(self.handles[op[1] % len(self.handles)])
        elif kind == "every":
            self.tasks.append(sim.every(op[1], self._fire_noarg))
        elif kind == "stop":
            if self.tasks:
                self.tasks[op[1] % len(self.tasks)].stop()
        elif kind == "step":
            self.log.append(("stepped", sim.step()))
        elif kind == "run":
            sim.run_until(sim.now + op[1])
        elif kind == "burst":
            # A callback that fans out same-instant events and cancels
            # one mid-bucket — the pattern the fast kernel optimizes.
            sim.schedule(op[1], self._burst, (op[2], op[3]))
        self.log.append(("after-op", sim.now, sim.pending(), sim.events_processed))

    def _fire(self, tag):
        self.log.append((tag, self.sim.now))

    def _fire_noarg(self):
        self.log.append(("noarg", self.sim.now))

    def _burst(self, arg):
        count, nested_delay = arg
        sim = self.sim
        burst_handles = [
            sim.schedule(0.0, self._fire, ("burst", i)) for i in range(count)
        ]
        sim.cancel(burst_handles[count // 2])
        # Re-entrant scheduling at a *later* instant while the bucket
        # drains: exercises the bucket re-open path.
        sim.schedule(nested_delay, self._fire, "post-burst")

    def finish(self):
        self.sim.run_until(self.sim.now + 1000.0)
        return (self.log, self.sim.now, self.sim.pending(), self.sim.events_processed)


# Delays drawn mostly from a small grid so simultaneous timestamps (the
# interesting case) are common, with occasional arbitrary floats.
delays = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 5.0]),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)
tags = st.integers(min_value=0, max_value=5)
operations = st.one_of(
    st.tuples(st.just("schedule"), delays, tags),
    st.tuples(st.just("schedule_at"), delays, tags),
    st.tuples(st.just("schedule_noarg"), delays),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=100)),
    st.tuples(st.just("every"), st.sampled_from([0.5, 1.0, 3.0])),
    st.tuples(st.just("stop"), st.integers(min_value=0, max_value=100)),
    st.tuples(st.just("step")),
    st.tuples(st.just("run"), delays),
    st.tuples(
        st.just("burst"),
        delays,
        st.integers(min_value=1, max_value=8),
        st.sampled_from([0.0, 0.5, 1.0]),
    ),
)


class TestKernelEquivalence:
    @given(st.lists(operations, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_fast_and_reference_kernels_agree(self, program):
        drivers = [Driver(fast=True), Driver(fast=False)]
        for op in program:
            for driver in drivers:
                driver.apply(op)
        fast_result, ref_result = (driver.finish() for driver in drivers)
        assert fast_result == ref_result

    @given(st.lists(st.tuples(delays, tags), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_handles_agree_across_kernels(self, events):
        fast, ref = Simulator(fast=True), Simulator(fast=False)
        for delay, _tag in events:
            a = fast.schedule(delay, lambda: None)
            b = ref.schedule(delay, lambda: None)
            assert (a.time, a.sequence) == (b.time, b.sequence)


class TestCancellationLeak:
    """Regression: the seed kernel kept cancelled sequence numbers in a
    set forever when the event had already fired."""

    def test_cancel_after_fire_leaves_no_residue_fast(self):
        sim = Simulator(fast=True)
        for _ in range(100):
            handle = sim.schedule(1.0, lambda: None)
            sim.run_until(sim.now + 2.0)
            sim.cancel(handle)  # already fired: must be a no-op
            sim.cancel(handle)  # and idempotent
        assert sim.pending() == 0
        assert not sim._heap and not sim._bucket

    def test_cancel_after_fire_leaves_no_residue_reference(self):
        sim = Simulator(fast=False)
        for _ in range(100):
            handle = sim.schedule(1.0, lambda: None)
            sim.run_until(sim.now + 2.0)
            sim.cancel(handle)
            sim.cancel(handle)
        assert sim.pending() == 0
        assert not sim._live

    def test_double_cancel_keeps_pending_exact(self):
        for fast in (True, False):
            sim = Simulator(fast=fast)
            handle = sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None)
            sim.cancel(handle)
            sim.cancel(handle)
            assert sim.pending() == 1, f"fast={fast}"

    def test_cancelled_entries_do_not_accumulate(self):
        # Cancel-heavy churn must not grow the queue without bound: dead
        # entries are swept as they reach the head.
        sim = Simulator(fast=True)
        for round_number in range(50):
            handles = [sim.schedule(1.0, lambda: None) for _ in range(20)]
            for handle in handles:
                sim.cancel(handle)
            sim.run_until(sim.now + 2.0)
            assert sim.pending() == 0
        assert len(sim._heap) + len(sim._bucket) <= 20
