"""Fast kernel vs reference kernel: end-to-end differential checks.

The `REPRO_NO_FASTKERNEL` kill-switch must be purely a performance
choice: same-seed pool runs, chaos recordings, and pool snapshots are
required to be bitwise identical whichever kernel executes them.  These
tests flip the switch with :func:`set_fast_kernel` and compare whole
artifacts, plus unit-check the network send fast path's eligibility
bookkeeping.
"""

import json

import pytest

from repro.cli import main
from repro.condor import CondorPool, Job, MachineSpec, PoissonOwner, PoolConfig
from repro.obs import metrics
from repro.sim import Network, RngStream, Simulator, set_fast_kernel


def with_kernel(fast, fn):
    set_fast_kernel(fast)
    try:
        return fn()
    finally:
        set_fast_kernel(None)


def run_pool_fingerprint():
    specs = [MachineSpec(name=f"m{i}") for i in range(5)]
    owner_models = {
        spec.name: PoissonOwner(mean_active=600.0, mean_idle=900.0) for spec in specs
    }
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=31,
            advertise_interval=120.0,
            negotiation_interval=120.0,
            network_loss=0.05,
            network_jitter=0.5,
        ),
        owner_models=owner_models,
    )
    for i in range(12):
        pool.submit(Job(owner="alice" if i % 2 else "bob", total_work=700.0))
    pool.run_until(15_000.0)
    m = pool.metrics
    return (
        m.jobs_completed,
        m.claims_attempted,
        m.claims_rejected,
        round(m.goodput, 9),
        round(m.badput, 9),
        pool.sim.events_processed,
        pool.collector.snapshot(),
    )


class TestPoolDifferential:
    def test_pool_history_and_snapshot_identical_across_kernels(self):
        fast = with_kernel(True, run_pool_fingerprint)
        reference = with_kernel(False, run_pool_fingerprint)
        assert fast == reference


class TestChaosRecordingDifferential:
    @pytest.fixture(scope="class")
    def recordings(self, tmp_path_factory):
        """Same-seed cm-crash recordings: two per kernel mode."""
        runs = {}
        for mode, fast in (("fast", True), ("reference", False)):
            set_fast_kernel(fast)
            try:
                for attempt in ("one", "two"):
                    base = tmp_path_factory.mktemp(f"{mode}-{attempt}")
                    paths = {
                        "events": str(base / "events.jsonl"),
                        "trace": str(base / "trace.jsonl"),
                        "series": str(base / "series.jsonl"),
                    }
                    code = main(
                        ["chaos", "cm-crash", "--machines", "4", "--jobs", "6",
                         "--horizon", "1800", "--out", paths["events"],
                         "--trace", paths["trace"], "--series", paths["series"]]
                    )
                    assert code == 0
                    runs[(mode, attempt)] = paths
            finally:
                set_fast_kernel(None)
        return runs

    @staticmethod
    def normalized_events(path):
        # cycle.end carries duration_s, a wall-clock measurement — the
        # one legitimately nondeterministic field in a recording.
        records = []
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                record.get("fields", {}).pop("duration_s", None)
                records.append(record)
        return records

    @pytest.mark.parametrize("mode", ["fast", "reference"])
    def test_two_runs_bitwise_identical_within_mode(self, recordings, mode):
        first, second = recordings[(mode, "one")], recordings[(mode, "two")]
        for stream in ("trace", "series"):
            with open(first[stream]) as a, open(second[stream]) as b:
                assert a.read() == b.read(), f"{mode}: {stream} differs across runs"
        assert self.normalized_events(first["events"]) == self.normalized_events(
            second["events"]
        )

    def test_recordings_identical_across_kernel_modes(self, recordings):
        fast, reference = recordings[("fast", "one")], recordings[("reference", "one")]
        for stream in ("trace", "series"):
            with open(fast[stream]) as a, open(reference[stream]) as b:
                assert a.read() == b.read(), f"{stream} differs across kernels"
        assert self.normalized_events(fast["events"]) == self.normalized_events(
            reference["events"]
        )


class _SizedPing:
    def __init__(self, sender, recipient, payload=0):
        self.sender = sender
        self.recipient = recipient
        self.payload = payload

    def wire_size(self):
        return 100


class TestNetworkFastPath:
    def test_eligibility_tracks_configuration(self):
        net = Network(Simulator(), latency=0.1)
        assert net._fast_send
        net.loss = 0.2
        assert not net._fast_send
        net.loss = 0.0
        assert net._fast_send
        net.jitter = 1.0
        assert not net._fast_send
        net.jitter = 0.0
        assert net._fast_send

    def test_chaos_install_disables_fast_send(self):
        from repro.sim.chaos import ChaosController, ChaosPlan

        net = Network(Simulator(), latency=0.1)
        net.install_chaos(ChaosController(ChaosPlan()))
        assert not net._fast_send
        net.install_chaos(None)
        assert net._fast_send

    def test_fast_and_slow_paths_deliver_identically(self):
        def run(force_slow):
            sim = Simulator()
            net = Network(sim, latency=0.1)
            if force_slow:
                metrics.enable()
            inbox = []
            net.register("b", inbox.append)
            try:
                for i in range(20):
                    net.send(_SizedPing("a", "b", i))
                sim.run()
            finally:
                metrics.disable()
                metrics.reset()
            return ([m.payload for m in inbox], net.stats.sent, sim.now)

        assert run(force_slow=False) == run(force_slow=True)

    def test_revive_is_schedulable_without_closure(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        inbox = []
        net.register("b", inbox.append)
        net.set_down("b")
        sim.schedule(1.0, net.revive, "b")
        sim.schedule(2.0, net.send, _SizedPing("a", "b", 7))
        sim.run()
        assert [m.payload for m in inbox] == [7]

    def test_bytes_sent_counts_only_while_metrics_enabled(self):
        sim = Simulator()
        net = Network(sim, latency=0.1)
        net.register("b", lambda m: None)
        net.send(_SizedPing("a", "b"))  # metrics off: not sized
        assert net.stats.bytes_sent == 0
        metrics.enable()
        try:
            net.send(_SizedPing("a", "b"))
            assert net.stats.bytes_sent == 100

            class Unsized:
                sender = "a"
                recipient = "b"

            net.send(Unsized())  # no wire_size method → contributes 0
        finally:
            metrics.disable()
            metrics.reset()
        assert net.stats.bytes_sent == 100
