"""The operator × operand-type conformance matrix.

Section 3.1 defines the semantics by example; this module pins down the
*complete* table: for every binary operator and every ordered pair of
operand classes (boolean, integer, real, string, undefined, error, list,
record), the result must fall in the expected class.  This is the
machine-checkable version of DESIGN.md §5.

Legend for expectations:
  B = boolean, N = number (int or real), S = string,
  U = undefined, E = error, * = same-as-operand rules noted inline.
"""

import pytest

from repro.classads import ClassAd, evaluate, parse
from repro.classads.values import (
    is_boolean,
    is_error,
    is_number,
    is_string,
    is_undefined,
)

# Representative operand of each class, as source text.
OPERANDS = {
    "bool": "true",
    "int": "3",
    "real": "2.5",
    "string": '"abc"',
    "undef": "undefined",
    "error": "error",
    "list": "{1}",
    "record": "[a = 1]",
}

CHECKS = {
    "B": is_boolean,
    "N": is_number,
    "S": is_string,
    "U": is_undefined,
    "E": is_error,
}


def outcome(op, left, right):
    return evaluate(parse(f"({OPERANDS[left]}) {op} ({OPERANDS[right]})"))


def classify(value):
    for label, check in CHECKS.items():
        if check(value):
            return label
    if isinstance(value, list):
        return "L"
    return "R"


# ---------------------------------------------------------------------------
# arithmetic: numbers (bools promote); undefined strict; error dominant;
# strings/lists/records are type errors.

ARITH_EXPECT = {
    # (left, right) -> class of result for + - *
    ("bool", "bool"): "N",
    ("bool", "int"): "N",
    ("bool", "real"): "N",
    ("int", "int"): "N",
    ("int", "real"): "N",
    ("real", "real"): "N",
    ("string", "int"): "E",
    ("string", "string"): "E",
    ("list", "int"): "E",
    ("record", "int"): "E",
    ("undef", "int"): "U",
    ("int", "undef"): "U",
    ("undef", "undef"): "U",
    ("undef", "string"): "U",  # undefined wins over the would-be type error
    ("error", "int"): "E",
    ("int", "error"): "E",
    ("error", "undef"): "E",
    ("undef", "error"): "E",
}


class TestArithmeticMatrix:
    @pytest.mark.parametrize("op", ["+", "-", "*"])
    @pytest.mark.parametrize("pair,expected", sorted(ARITH_EXPECT.items()))
    def test_matrix(self, op, pair, expected):
        left, right = pair
        assert classify(outcome(op, left, right)) == expected, (op, pair)

    def test_division_type_rules_match_multiplication(self):
        for pair, expected in ARITH_EXPECT.items():
            got = classify(outcome("/", *pair))
            assert got == expected, pair

    def test_modulus_restricts_to_integers(self):
        assert classify(outcome("%", "int", "int")) == "N"
        assert classify(outcome("%", "real", "int")) == "E"
        assert classify(outcome("%", "bool", "bool")) == "N"  # bools promote
        assert classify(outcome("%", "undef", "int")) == "U"


# ---------------------------------------------------------------------------
# comparisons: defined for number/number (bools promote) and
# string/string; strict in undefined; error dominant; cross-type error.

COMPARE_EXPECT = {
    ("int", "int"): "B",
    ("int", "real"): "B",
    ("bool", "int"): "B",
    ("bool", "bool"): "B",
    ("string", "string"): "B",
    ("string", "int"): "E",
    ("list", "list"): "E",
    ("record", "record"): "E",
    ("list", "int"): "E",
    ("undef", "int"): "U",
    ("string", "undef"): "U",
    ("undef", "undef"): "U",
    ("error", "string"): "E",
    ("undef", "error"): "E",
}


class TestComparisonMatrix:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "==", "!="])
    @pytest.mark.parametrize("pair,expected", sorted(COMPARE_EXPECT.items()))
    def test_matrix(self, op, pair, expected):
        left, right = pair
        assert classify(outcome(op, left, right)) == expected, (op, pair)


# ---------------------------------------------------------------------------
# boolean connectives: three-valued, non-strict, non-booleans are errors
# unless short-circuited away.

AND_EXPECT = {
    ("bool", "bool"): "B",
    ("bool", "undef"): "U",  # true && undefined (operand is literal true)
    ("undef", "bool"): "U",  # undefined && true
    ("undef", "undef"): "U",
    ("bool", "error"): "E",  # true && error
    ("error", "bool"): "E",
    ("int", "bool"): "E",  # numbers are not truthy
    ("bool", "int"): "E",
    ("string", "bool"): "E",
    ("undef", "error"): "E",
}


class TestConnectiveMatrix:
    @pytest.mark.parametrize("pair,expected", sorted(AND_EXPECT.items()))
    def test_and(self, pair, expected):
        left, right = pair
        assert classify(outcome("&&", left, right)) == expected, pair

    def test_and_short_circuits_false(self):
        # false dominates everything, even error and type garbage.
        for right in OPERANDS:
            assert evaluate(parse(f"false && ({OPERANDS[right]})")) is False

    def test_or_short_circuits_true(self):
        for right in OPERANDS:
            assert evaluate(parse(f"true || ({OPERANDS[right]})")) is True

    def test_or_duality(self):
        # a || b ≡ !(!a && !b) on the boolean/undefined fragment.
        for left in ("bool", "undef"):
            for right in ("bool", "undef"):
                direct = evaluate(
                    parse(f"({OPERANDS[left]}) || ({OPERANDS[right]})")
                )
                via_and = evaluate(
                    parse(f"!((!({OPERANDS[left]})) && (!({OPERANDS[right]})))")
                )
                assert classify(direct) == classify(via_and)


# ---------------------------------------------------------------------------
# is / isnt: total, always boolean, for EVERY operand pair.


class TestIdentityTotality:
    @pytest.mark.parametrize("left", sorted(OPERANDS))
    @pytest.mark.parametrize("right", sorted(OPERANDS))
    def test_is_always_boolean(self, left, right):
        result = outcome("is", left, right)
        assert result is True or result is False

    @pytest.mark.parametrize("kind", sorted(OPERANDS))
    def test_is_reflexive_on_all_classes(self, kind):
        assert outcome("is", kind, kind) is True

    @pytest.mark.parametrize("left", sorted(OPERANDS))
    @pytest.mark.parametrize("right", sorted(OPERANDS))
    def test_isnt_is_negation_of_is(self, left, right):
        assert outcome("isnt", left, right) == (not outcome("is", left, right))

    def test_cross_class_identity_is_false(self):
        kinds = sorted(OPERANDS)
        for left in kinds:
            for right in kinds:
                if left != right:
                    assert outcome("is", left, right) is False, (left, right)


# ---------------------------------------------------------------------------
# unary operators over every class.


class TestUnaryMatrix:
    UNARY_NOT = {
        "bool": "B",
        "int": "E",
        "real": "E",
        "string": "E",
        "undef": "U",
        "error": "E",
        "list": "E",
        "record": "E",
    }
    UNARY_MINUS = {
        "bool": "N",
        "int": "N",
        "real": "N",
        "string": "E",
        "undef": "U",
        "error": "E",
        "list": "E",
        "record": "E",
    }

    @pytest.mark.parametrize("kind,expected", sorted(UNARY_NOT.items()))
    def test_not(self, kind, expected):
        assert classify(evaluate(parse(f"!({OPERANDS[kind]})"))) == expected

    @pytest.mark.parametrize("kind,expected", sorted(UNARY_MINUS.items()))
    def test_minus(self, kind, expected):
        assert classify(evaluate(parse(f"-({OPERANDS[kind]})"))) == expected

    @pytest.mark.parametrize("kind,expected", sorted(UNARY_MINUS.items()))
    def test_plus_matches_minus_typing(self, kind, expected):
        assert classify(evaluate(parse(f"+({OPERANDS[kind]})"))) == expected


# ---------------------------------------------------------------------------
# conditional guard over every class.


class TestConditionalGuardMatrix:
    GUARD = {
        "bool": "N",  # takes a branch → the branch's number
        "int": "E",
        "real": "E",
        "string": "E",
        "undef": "U",
        "error": "E",
        "list": "E",
        "record": "E",
    }

    @pytest.mark.parametrize("kind,expected", sorted(GUARD.items()))
    def test_guard(self, kind, expected):
        assert classify(evaluate(parse(f"({OPERANDS[kind]}) ? 1 : 2"))) == expected
