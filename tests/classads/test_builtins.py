"""Unit tests for the built-in function library."""

import pytest

from repro.classads import ClassAd, evaluate, is_error, is_undefined, parse


def ev(text, self_ad=None, other=None):
    return evaluate(parse(text), self_ad, other=other)


class TestMember:
    def test_string_membership(self):
        ad = ClassAd.parse('[ Group = { "raman", "miron" } ]')
        assert ev('member("raman", Group)', ad) is True
        assert ev('member("wright", Group)', ad) is False

    def test_case_insensitive_like_equality(self):
        ad = ClassAd.parse('[ Group = { "Raman" } ]')
        assert ev('member("raman", Group)', ad) is True

    def test_numeric_membership_promotes(self):
        assert ev("member(2, {1, 2.0, 3})") is True
        assert ev("member(true, {1})") is True

    def test_missing_list_is_undefined(self):
        ad = ClassAd({})
        assert is_undefined(ev('member("x", NoSuchList)', ad))

    def test_undefined_item_is_undefined(self):
        assert is_undefined(ev("member(undefined, {1})"))

    def test_non_list_is_error(self):
        assert is_error(ev('member("x", 3)'))

    def test_incomparable_elements_error_only_without_match(self):
        assert ev('member(2, {"a", 2})') is True
        assert is_error(ev('member(2, {"a", 3})'))

    def test_wrong_arity(self):
        assert is_error(ev("member(1)"))


class TestIdenticalMember:
    def test_case_sensitive(self):
        assert ev('identicalMember("Raman", {"raman"})') is False
        assert ev('identicalMember("raman", {"raman"})') is True

    def test_undefined_item_allowed(self):
        # Meta operation: can probe for undefined in a list.
        assert ev("identicalMember(undefined, {undefined})") is True

    def test_type_distinction(self):
        assert ev("identicalMember(1, {1.0})") is False


class TestSizeAndAggregates:
    def test_size_of_list(self):
        assert ev("size({1, 2, 3})") == 3

    def test_size_of_string(self):
        assert ev('size("abc")') == 3

    def test_size_of_record(self):
        assert ev("size([a = 1; b = 2])") == 2

    def test_size_of_number_is_error(self):
        assert is_error(ev("size(3)"))

    def test_sum(self):
        assert ev("sum({1, 2, 3.5})") == 6.5

    def test_sum_with_booleans(self):
        assert ev("sum({true, true, false})") == 2

    def test_sum_non_numeric_is_error(self):
        assert is_error(ev('sum({1, "x"})'))

    def test_min_max_over_list(self):
        assert ev("min({3, 1, 2})") == 1
        assert ev("max({3, 1, 2})") == 3

    def test_min_max_varargs(self):
        assert ev("min(3, 1, 2)") == 1
        assert ev("max(1.5, 2)") == 2

    def test_min_of_empty_list_is_undefined(self):
        assert is_undefined(ev("min({})"))


class TestStringFunctions:
    def test_strcat(self):
        assert ev('strcat("vm-", 12)') == "vm-12"

    def test_strcat_booleans(self):
        assert ev("strcat(true, false)") == "truefalse"

    def test_strcat_undefined_propagates(self):
        assert is_undefined(ev('strcat("a", undefined)'))

    def test_substr_basic(self):
        assert ev('substr("leonardo", 0, 3)') == "leo"

    def test_substr_to_end(self):
        assert ev('substr("leonardo", 4)') == "ardo"

    def test_substr_negative_offset(self):
        assert ev('substr("leonardo", -4)') == "ardo"

    def test_substr_negative_length(self):
        assert ev('substr("leonardo", 1, -1)') == "eonard"

    def test_substr_bad_types(self):
        assert is_error(ev("substr(5, 0)"))

    def test_case_conversion(self):
        assert ev('toUpper("intel")') == "INTEL"
        assert ev('toLower("SOLARIS251")') == "solaris251"

    def test_regexp(self):
        assert ev('regexp("^run_", "run_sim")') is True
        assert ev('regexp("^sim", "run_sim")') is False

    def test_regexp_case_insensitive_option(self):
        assert ev('regexp("INTEL", "intel", "i")') is True

    def test_regexp_bad_pattern_is_error(self):
        assert is_error(ev('regexp("(", "x")'))

    def test_string_list_member(self):
        assert ev('stringListMember("vanilla", "standard, vanilla, pvm")') is True
        assert ev('stringListMember("mpi", "standard, vanilla")') is False

    def test_string_list_member_custom_delims(self):
        assert ev('stringListMember("b", "a:b:c", ":")') is True


class TestNumericFunctions:
    def test_int_of_real_truncates(self):
        assert ev("int(3.9)") == 3
        assert ev("int(-3.9)") == -3

    def test_int_of_string(self):
        assert ev('int("42")') == 42
        assert ev('int(" 3.5 ")') == 3

    def test_int_of_garbage_is_error(self):
        assert is_error(ev('int("forty")'))

    def test_real_of_int(self):
        assert ev("real(3)") == 3.0

    def test_real_of_string(self):
        assert ev('real("2.5")') == 2.5

    def test_string_of_number(self):
        assert ev("string(42)") == "42"

    def test_floor_ceiling(self):
        assert ev("floor(3.7)") == 3
        assert ev("ceiling(3.2)") == 4
        assert ev("floor(-3.2)") == -4
        assert ev("ceiling(-3.7)") == -3

    def test_round_half_away_from_zero(self):
        assert ev("round(2.5)") == 3
        assert ev("round(-2.5)") == -3
        assert ev("round(2.4)") == 2

    def test_abs(self):
        assert ev("abs(-4)") == 4
        assert ev("abs(2.5)") == 2.5

    def test_pow(self):
        assert ev("pow(2, 10)") == 1024

    def test_pow_domain_error(self):
        assert is_error(ev("pow(-1, 0.5)"))


class TestTypePredicates:
    def test_is_undefined_non_strict(self):
        assert ev("isUndefined(undefined)") is True
        assert ev("isUndefined(3)") is False

    def test_is_undefined_of_missing_attribute(self):
        ad = ClassAd({})
        assert ev("isUndefined(Memory)", ad) is True

    def test_is_error_non_strict(self):
        assert ev("isError(1/0)") is True
        assert ev("isError(1)") is False

    def test_scalar_predicates(self):
        assert ev('isString("x")') is True
        assert ev("isInteger(3)") is True
        assert ev("isInteger(3.0)") is False
        assert ev("isReal(3.0)") is True
        assert ev("isBoolean(true)") is True
        assert ev("isBoolean(1)") is False
        assert ev("isList({1})") is True
        assert ev("isClassAd([a=1])") is True


class TestIfThenElse:
    def test_selects_branch(self):
        assert ev("ifThenElse(2 > 1, 10, 20)") == 10
        assert ev("ifThenElse(2 < 1, 10, 20)") == 20

    def test_lazy_untaken_branch(self):
        assert ev("ifThenElse(true, 1, 1/0)") == 1

    def test_undefined_guard(self):
        assert is_undefined(ev("ifThenElse(undefined, 1, 2)"))

    def test_wrong_arity_is_error(self):
        assert is_error(ev("ifThenElse(true, 1)"))


class TestSplitJoin:
    def test_split_on_whitespace(self):
        assert ev('split("a b  c")') == ["a", "b", "c"]

    def test_split_custom_delims(self):
        assert ev('split("a,b;c", ",;")') == ["a", "b", "c"]

    def test_split_drops_empty_tokens(self):
        assert ev('split("a,,b", ",")') == ["a", "b"]

    def test_split_non_string_is_error(self):
        assert is_error(ev("split(3)"))

    def test_split_empty_delims_is_error(self):
        assert is_error(ev('split("a", "")'))

    def test_join_list(self):
        assert ev('join("-", {"a", "b", "c"})') == "a-b-c"

    def test_join_varargs_with_numbers(self):
        assert ev('join(":", "x", 1, true)') == "x:1:true"

    def test_join_round_trips_split(self):
        assert ev('join(",", split("a,b,c", ","))') == "a,b,c"

    def test_join_bad_separator(self):
        assert is_error(ev('join(3, {"a"})'))

    def test_split_undefined_propagates(self):
        assert is_undefined(ev("split(undefined)"))
