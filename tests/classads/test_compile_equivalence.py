"""Differential tests: the closure compiler against the interpreter.

The compiled evaluator (:mod:`repro.classads.compile`) claims *exact*
equivalence with the tree-walking interpreter — value for value,
``undefined`` vs ``false`` for ``undefined`` vs ``false``, and ``error``
for ``error``.  This suite makes that claim checkable rather than
asserted:

* a directed catalog of semantic corners (string case rules, mixed
  int/float comparison, division/modulus faults, three-valued logic,
  scope resolution, cycles, bilateral ``self``/``other`` evaluation);
* hypothesis sweeps over randomly generated expressions and ad pairs
  (marked slow, like the other property tests);
* unit tests for the machinery itself: per-ad cache invalidation on
  mutation, the ``REPRO_NO_COMPILE`` kill-switch, the observability
  counters, and the structural-memo type discrimination.

Comparison uses :func:`values_identical`, the language's own strictest
equality (distinguishes ``3``/``3.0``/``true`` and ``undefined``/
``false``; all errors compare equal).
"""

import pytest

from hypothesis import given, settings

from repro.classads import ClassAd, parse, values_identical
from repro.classads import compile as cc
from repro.classads import evaluator as interp
from repro.obs import metrics

from tests.classads.test_properties import classads, expressions


@pytest.fixture(autouse=True)
def _compiled_mode():
    """Force the compiled path on (the env kill-switch may be set in CI)."""
    previous = cc.compilation_enabled()
    cc.set_compilation(True)
    yield
    cc.set_compilation(previous)


def both(source_or_expr, self_ad=None, other=None, **kwargs):
    """(compiled, interpreted) results for one expression evaluation."""
    expr = parse(source_or_expr) if isinstance(source_or_expr, str) else source_or_expr
    compiled = cc.evaluate(expr, self_ad, other=other, **kwargs)
    interpreted = interp.evaluate(expr, self_ad, other=other, **kwargs)
    return compiled, interpreted


def assert_equivalent(source_or_expr, self_ad=None, other=None, **kwargs):
    compiled, interpreted = both(source_or_expr, self_ad, other, **kwargs)
    assert values_identical(compiled, interpreted), (
        f"{source_or_expr!r}: compiled={compiled!r} interpreted={interpreted!r}"
    )


MACHINE = ClassAd.parse(
    """[
    Type = "Machine"; Name = "crow"; Arch = "INTEL"; OpSys = "SOLARIS251";
    Memory = 64; Disk = 323496; KFlops = 21893; LoadAvg = 0.042;
    State = "Unclaimed"; Tier = [ Kind = "gold"; Bonus = 7 ];
    Groups = { "cs", "physics", "staff" };
    Constraint = other.Type == "Job" && LoadAvg < 0.3;
    Rank = other.Owner == "raman" ? 10 : 0;
]"""
)

JOB = ClassAd.parse(
    """[
    Type = "Job"; Owner = "raman"; QDate = 886799469;
    Memory = 31; Cmd = "run_sim";
    Constraint = other.Type == "Machine" && Arch == "INTEL"
                 && OpSys == "SOLARIS251" && Disk >= 10000;
    Rank = other.KFlops / 1E3 + other.Memory / 32;
]"""
)


CORNER_EXPRESSIONS = [
    # ---- arithmetic, including the fault corners the harness targets
    "1 + 2 * 3 - 4",
    "7 / 2",
    "-7 / 2",
    "7 / -2",
    "-7 / -2",
    "7.0 / 2",
    "7 % 3",
    "-7 % 3",
    "7 % -3",
    "1 / 0",
    "1.0 / 0",
    "1 % 0",
    "1.5 % 2",
    '"a" + 1',
    "9007199254740993 / 3",  # 2**53 + 1: breaks float round-tripping
    "9007199254740993 % 4",
    "-9007199254740993 / 4",
    # ---- mixed int/float/bool comparison
    "1 == 1.0",
    "true == 1",
    "false < 0.5",
    "3 < 3.14",
    '"10" == 10',
    # ---- string case rules: == is case-insensitive, `is` is not
    '"LINUX" == "linux"',
    '"LINUX" is "linux"',
    '"LINUX" isnt "linux"',
    '"abc" < "ABD"',
    # ---- three-valued logic
    "undefined && true",
    "undefined && false",
    "false && error",
    "true && undefined",
    "undefined || true",
    "undefined || false",
    "true || error",
    "error || true",
    "undefined || error",
    "error && undefined",
    "1 && true",
    "!undefined",
    "!error",
    "!3",
    # ---- is / isnt meta-identity
    "undefined is undefined",
    "error is error",
    "3 is 3.0",
    "1 is true",
    "undefined isnt false",
    # ---- strictness
    "undefined + 1",
    "error + 1",
    "undefined == undefined",
    "undefined < 3",
    # ---- conditionals (lazy branches)
    "true ? 1 : error",
    "false ? error : 2",
    "undefined ? 1 : 2",
    "error ? 1 : 2",
    "3 ? 1 : 2",
    "1 < 2 ? (1/0) : 7",
    # ---- lists and subscripts
    "{1, 2, 3}[1]",
    "{1, 2, 3}[5]",
    "{1, 2, 3}[-1]",
    "{1, 2, 3}[true]",
    '{1, "two", 3.0}[undefined]',
    "3[0]",
    "{10, 20}[1 - 1]",
    # ---- records and selects
    "[a = 1; b = a + 1].b",
    "[a = 1].missing",
    "3 .x",
    "Tier.Bonus",
    "Tier.Kind",
    # ---- builtins (incl. constant folding of pure calls)
    'size("hello")',
    "size({1, 2})",
    'strcat("a", "b", 3)',
    'member("cs", Groups)',
    "isUndefined(Missing)",
    "isInteger(3)",
    "isInteger(3.0)",
    "isInteger(true)",
    "min(3, 1.5, 2)",
    "nosuchfunction(1)",
    "ifThenElse(true, 1, error)",
    "ifThenElse(undefined, 1, 2)",
    "ifThenElse(1, 2)",
    # ---- references and scope fall-through
    "Memory",
    "self.Memory",
    "other.Memory",
    "Missing",
    "other.Missing",
    "self.Owner",  # absent on MACHINE's side, present on JOB's
    "Owner",  # bare-name fall-through to the other ad
    "Memory + other.Memory",
]


class TestCornerCatalog:
    @pytest.mark.parametrize("source", CORNER_EXPRESSIONS)
    def test_machine_vs_job(self, source):
        assert_equivalent(source, MACHINE, JOB)

    @pytest.mark.parametrize("source", CORNER_EXPRESSIONS)
    def test_job_vs_machine(self, source):
        assert_equivalent(source, JOB, MACHINE)

    @pytest.mark.parametrize("source", CORNER_EXPRESSIONS)
    def test_detached(self, source):
        assert_equivalent(source)

    def test_bilateral_constraints_and_ranks(self):
        for ad, other in ((MACHINE, JOB), (JOB, MACHINE)):
            for attr in ("Constraint", "Rank"):
                compiled = cc.evaluate_attribute(ad, attr, other=other)
                interpreted = interp.evaluate_attribute(ad, attr, other=other)
                assert values_identical(compiled, interpreted)


class TestResolutionCorners:
    def test_circular_reference_is_undefined(self):
        from repro.classads import UNDEFINED

        ad = ClassAd()
        ad.set_expr("a", "b")
        ad.set_expr("b", "a")
        # Both paths detect a -> b -> a exactly and yield undefined.
        assert interp.evaluate_attribute(ad, "a") is UNDEFINED
        assert cc.evaluate_attribute(ad, "a") is UNDEFINED

    def test_ping_pong_across_ads_terminates_identically(self):
        a = ClassAd({"Type": "A"})
        a.set_expr("Rank", "other.Rank")
        b = ClassAd({"Type": "B"})
        b.set_expr("Rank", "other.Rank")
        compiled = cc.evaluate_attribute(a, "Rank", other=b)
        interpreted = interp.evaluate_attribute(a, "Rank", other=b)
        assert values_identical(compiled, interpreted)

    def test_attribute_chain(self):
        ad = ClassAd()
        for i in range(20):
            ad.set_expr(f"a{i}", f"a{i + 1} + 1")
        ad["a20"] = 0
        assert values_identical(
            cc.evaluate_attribute(ad, "a0"), interp.evaluate_attribute(ad, "a0")
        )

    def test_small_step_budget_matches_interpreter(self):
        ad = ClassAd()
        for i in range(20):
            ad.set_expr(f"a{i}", f"a{i + 1} + 1")
        ad["a20"] = 0
        from repro.classads import is_error

        compiled = cc.evaluate_attribute(ad, "a0", max_steps=10)
        interpreted = interp.evaluate_attribute(ad, "a0", max_steps=10)
        # Both must fault on the budget (the compiled path charges
        # conservatively but may not exceed where the interpreter would
        # succeed; at budget 10 both must fail).
        assert is_error(compiled) and is_error(interpreted)

    def test_deep_static_nesting_falls_back(self):
        source = "!" * 300 + "true"
        assert_equivalent(source, MACHINE, JOB)

    def test_nested_record_sibling_scope(self):
        ad = ClassAd.parse("[ Outer = [ X = 2; Y = X * 3 ]; Z = Outer.Y ]")
        assert values_identical(
            cc.evaluate_attribute(ad, "Z"), interp.evaluate_attribute(ad, "Z")
        )


class TestHypothesisSweeps:
    pytestmark = pytest.mark.slow

    @given(expressions(), classads(depth=4), classads(depth=4))
    @settings(max_examples=400, deadline=None)
    def test_expression_equivalence(self, expr, self_ad, other_ad):
        compiled = cc.evaluate(expr, self_ad, other=other_ad)
        interpreted = interp.evaluate(expr, self_ad, other=other_ad)
        assert values_identical(compiled, interpreted)

    @given(classads(depth=5), classads(depth=5))
    @settings(max_examples=150, deadline=None)
    def test_attribute_equivalence(self, ad, other):
        for name in ad.keys():
            compiled = cc.evaluate_attribute(ad, name, other=other)
            interpreted = interp.evaluate_attribute(ad, name, other=other)
            assert values_identical(compiled, interpreted)

    @given(expressions(max_leaves=10), classads(depth=3))
    @settings(max_examples=150, deadline=None)
    def test_compiled_expr_wrapper_equivalence(self, expr, ad):
        wrapper = cc.compile_expr(expr)
        assert values_identical(wrapper.evaluate(ad), interp.evaluate(expr, ad))


class TestCacheMachinery:
    def test_mutation_invalidates_compiled_attribute(self):
        ad = ClassAd({"Memory": 64})
        ad.set_expr("Constraint", "Memory >= 32")
        assert cc.evaluate_attribute(ad, "Constraint") is True
        ad["Memory"] = 16
        assert cc.evaluate_attribute(ad, "Constraint") is False
        ad.set_expr("Constraint", "Memory >= 8")
        assert cc.evaluate_attribute(ad, "Constraint") is True
        del ad["Constraint"]
        from repro.classads import UNDEFINED

        assert cc.evaluate_attribute(ad, "Constraint") is UNDEFINED

    def test_warm_cache_hits_are_counted(self):
        ad = ClassAd({"Type": "Machine"})
        ad.set_expr("Constraint", 'other.Kind == "probe-hits"')
        other = ClassAd({"Kind": "probe-hits"})
        cc.evaluate_attribute(ad, "Constraint", other=other)  # compile miss
        before = cc.cache_stats()
        for _ in range(5):
            assert cc.evaluate_attribute(ad, "Constraint", other=other) is True
        after = cc.cache_stats()
        assert after["hits"] - before["hits"] >= 5
        assert after["misses"] == before["misses"]
        assert cc.cache_hits_total() == after["hits"]

    def test_structurally_equal_ads_share_compiled_code(self):
        source = 'other.Type == "Job" && Memory > 1'
        ads = []
        for _ in range(3):
            ad = ClassAd({"Type": "Machine", "Memory": 64})
            ad.set_expr("Constraint", source)
            ads.append(ad)
        other = ClassAd({"Type": "Job"})
        cc.clear_cache()
        before = cc.cache_stats()["compiles"]
        for ad in ads:
            assert cc.evaluate_attribute(ad, "Constraint", other=other) is True
        compiled = cc.cache_stats()["compiles"] - before
        # One compile serves all three structurally identical constraints.
        assert compiled == 1

    def test_memo_distinguishes_literal_types(self):
        # Literal(3) == Literal(3.0) == Literal(true) under structural
        # equality; the memo must not conflate their code.
        assert_equivalent("isInteger(3)")
        assert_equivalent("isInteger(3.0)")
        assert_equivalent("isReal(3.0)")
        assert_equivalent("isBoolean(true)")
        assert_equivalent("3 is 3")
        assert_equivalent("3.0 is 3")

    def test_counters_flush_into_registry(self):
        metrics.enable()
        try:
            metrics.reset()
            ad = ClassAd({"Type": "Machine"})
            ad.set_expr("Constraint", 'other.Kind == "flush-probe"')
            other = ClassAd({"Kind": "flush-probe"})
            for _ in range(3):
                cc.evaluate_attribute(ad, "Constraint", other=other)
            totals = metrics.totals()
            assert totals.get("classads.compile.cache_hits", 0) >= 2
            assert totals.get("classads.compile.cache_misses", 0) >= 1
            # The compiled path still reports toplevel evaluations.
            assert totals.get("classads.evaluations", 0) >= 3
            assert totals.get("classads.eval_steps", 0) >= totals["classads.evaluations"]
        finally:
            metrics.disable()
            metrics.reset()


class TestKillSwitch:
    def test_set_compilation_routes_to_interpreter(self):
        ad = ClassAd({"Memory": 64})
        ad.set_expr("Constraint", "Memory >= 32")
        cc.set_compilation(False)
        try:
            assert not cc.compilation_enabled()
            before = cc.cache_stats()
            assert cc.evaluate_attribute(ad, "Constraint") is True
            assert cc.evaluate(parse("1 + 1"), ad) == 2
            assert cc.compile_expr(parse("Memory > 1")).evaluate(ad) is True
            # Disabled path never touches the compiled caches.
            assert cc.cache_stats() == before
        finally:
            cc.set_compilation(True)

    def test_env_kill_switch(self):
        import subprocess
        import sys

        code = (
            "from repro.classads import ClassAd, compilation_enabled\n"
            "ad = ClassAd({'Memory': 64})\n"
            "ad.set_expr('Constraint', 'Memory >= 32')\n"
            "assert not compilation_enabled()\n"
            "assert ad.evaluate('Constraint') is True\n"
            "from repro.classads.compile import cache_stats\n"
            "assert cache_stats()['compiles'] == 0\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_NO_COMPILE": "1", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"


class TestBigIntDivisionRegression:
    """The float-round-trip bug the differential harness surfaced: integer
    ``/`` and ``%`` past 2**53 lost precision in both semantics paths."""

    def test_exact_big_int_division(self):
        big = 2**53 + 1
        assert interp.evaluate(parse(f"{big} / 1")) == big
        assert cc.evaluate(parse(f"{big} / 1")) == big
        assert interp.evaluate(parse(f"{3 * big} / 3")) == big
        assert cc.evaluate(parse(f"{3 * big} / 3")) == big

    def test_exact_big_int_modulus(self):
        big = 2**61 + 7
        assert interp.evaluate(parse(f"{big} % 1000")) == big % 1000
        assert cc.evaluate(parse(f"{big} % 1000")) == big % 1000

    def test_truncation_toward_zero_preserved(self):
        # C semantics, not Python floor semantics.
        for l, r in ((7, 2), (-7, 2), (7, -2), (-7, -2)):
            assert interp.evaluate(parse(f"({l}) / ({r})")) == int(l / r)
            assert cc.evaluate(parse(f"({l}) / ({r})")) == int(l / r)
            expected_mod = l - r * int(l / r)
            assert interp.evaluate(parse(f"({l}) % ({r})")) == expected_mod
            assert cc.evaluate(parse(f"({l}) % ({r})")) == expected_mod
