"""Unit tests for the classad parser: structure, precedence, errors."""

import pytest

from repro.classads import (
    UNDEFINED,
    AttributeRef,
    BinaryOp,
    Conditional,
    FunctionCall,
    ListExpr,
    Literal,
    ParseError,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
    parse,
    parse_record,
)


class TestPrimary:
    def test_integer_literal(self):
        assert parse("42") == Literal(42)

    def test_real_literal(self):
        assert parse("3.5") == Literal(3.5)

    def test_string_literal(self):
        assert parse('"INTEL"') == Literal("INTEL")

    def test_boolean_keywords_case_insensitive(self):
        assert parse("TRUE") == Literal(True)
        assert parse("False") == Literal(False)

    def test_undefined_and_error_keywords(self):
        assert parse("undefined") == Literal(UNDEFINED)
        assert parse("UNDEFINED") == Literal(UNDEFINED)
        from repro.classads import ERROR

        assert parse("error") == Literal(ERROR)

    def test_bare_reference(self):
        assert parse("Memory") == AttributeRef("Memory")

    def test_self_reference(self):
        assert parse("self.Memory") == AttributeRef("Memory", "self")

    def test_other_reference(self):
        assert parse("other.Memory") == AttributeRef("Memory", "other")

    def test_my_target_aliases(self):
        # Classic-ClassAd spellings map onto the paper's self/other.
        assert parse("MY.Memory") == AttributeRef("Memory", "self")
        assert parse("TARGET.Disk") == AttributeRef("Disk", "other")

    def test_parenthesized(self):
        assert parse("(Memory)") == AttributeRef("Memory")


class TestReferenceCaseInsensitivity:
    def test_refs_compare_case_insensitively(self):
        assert parse("memory") == parse("MEMORY")

    def test_scoped_refs_compare_case_insensitively(self):
        assert parse("other.MEMORY") == parse("OTHER.memory")

    def test_scope_distinguishes(self):
        assert parse("self.Memory") != parse("other.Memory")
        assert parse("Memory") != parse("self.Memory")


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        expr = parse("a + b * c")
        assert expr == BinaryOp(
            "+", AttributeRef("a"), BinaryOp("*", AttributeRef("b"), AttributeRef("c"))
        )

    def test_comparison_binds_tighter_than_and(self):
        expr = parse("a < b && c")
        assert isinstance(expr, BinaryOp) and expr.op == "&&"
        assert expr.left == BinaryOp("<", AttributeRef("a"), AttributeRef("b"))

    def test_and_binds_tighter_than_or(self):
        expr = parse("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_equality_binds_tighter_than_relational_is_false(self):
        # == and < live on different levels: `a < b == c` groups as (a<b)==c.
        expr = parse("a < b == c")
        assert expr.op == "=="
        assert expr.left.op == "<"

    def test_left_associativity_of_subtraction(self):
        expr = parse("a - b - c")
        assert expr.op == "-"
        assert expr.left == BinaryOp("-", AttributeRef("a"), AttributeRef("b"))

    def test_conditional_is_right_associative(self):
        expr = parse("a ? b : c ? d : e")
        assert isinstance(expr, Conditional)
        assert isinstance(expr.otherwise, Conditional)

    def test_nested_conditional_in_then_branch(self):
        # Figure 1's Constraint nests a conditional in the else branch.
        expr = parse("a ? b ? c : d : e")
        assert isinstance(expr.then, Conditional)

    def test_unary_binds_tighter_than_binary(self):
        expr = parse("!a && b")
        assert expr.op == "&&"
        assert expr.left == UnaryOp("!", AttributeRef("a"))

    def test_double_negation(self):
        assert parse("!!a") == UnaryOp("!", UnaryOp("!", AttributeRef("a")))

    def test_unary_minus_in_arithmetic(self):
        expr = parse("a * -b")
        assert expr.right == UnaryOp("-", AttributeRef("b"))

    def test_parentheses_override(self):
        expr = parse("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"


class TestIsIsnt:
    def test_is_keyword(self):
        assert parse("x is undefined") == BinaryOp(
            "is", AttributeRef("x"), Literal(UNDEFINED)
        )

    def test_isnt_keyword(self):
        expr = parse("x isnt 3")
        assert expr.op == "isnt"

    def test_symbolic_aliases(self):
        assert parse("x =?= y") == parse("x is y")
        assert parse("x =!= y") == parse("x isnt y")

    def test_is_same_level_as_equality(self):
        expr = parse("a == b is c")
        assert expr.op == "is"
        assert expr.left.op == "=="


class TestListsAndRecords:
    def test_empty_list(self):
        assert parse("{}") == ListExpr([])

    def test_list_of_strings(self):
        expr = parse('{ "raman", "miron" }')
        assert expr == ListExpr([Literal("raman"), Literal("miron")])

    def test_nested_lists(self):
        expr = parse("{ {1, 2}, {3} }")
        assert len(expr.items) == 2
        assert isinstance(expr.items[0], ListExpr)

    def test_record_expression(self):
        expr = parse("[ a = 1; b = 2 ]")
        assert isinstance(expr, RecordExpr)
        assert expr.lookup("A") == Literal(1)

    def test_record_trailing_semicolon(self):
        expr = parse("[ a = 1; ]")
        assert len(expr.fields) == 1

    def test_empty_record(self):
        assert parse("[]") == RecordExpr([])

    def test_nested_record(self):
        expr = parse("[ cpu = [ mips = 104 ] ]")
        inner = expr.lookup("cpu")
        assert isinstance(inner, RecordExpr)
        assert inner.lookup("mips") == Literal(104)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ParseError):
            parse("[ a = 1; A = 2 ]")

    def test_parse_record_without_brackets(self):
        record = parse_record('Type = "Job"; Memory = 31')
        assert record.lookup("type") == Literal("Job")
        assert record.lookup("memory") == Literal(31)


class TestPostfix:
    def test_selection_on_reference(self):
        expr = parse("cpu.Mips")
        assert expr == Select(AttributeRef("cpu"), "Mips")

    def test_selection_chain(self):
        expr = parse("a.b.c")
        assert expr == Select(Select(AttributeRef("a"), "b"), "c")

    def test_selection_after_scoped_ref(self):
        expr = parse("other.cpu.Mips")
        assert expr == Select(AttributeRef("cpu", "other"), "Mips")

    def test_subscript(self):
        expr = parse("Friends[0]")
        assert expr == Subscript(AttributeRef("Friends"), Literal(0))

    def test_subscript_with_expression_index(self):
        expr = parse("xs[i + 1]")
        assert isinstance(expr.index, BinaryOp)

    def test_selection_on_record_literal(self):
        expr = parse("[a = 5].a")
        assert isinstance(expr, Select)


class TestFunctionCalls:
    def test_no_args(self):
        assert parse("f()") == FunctionCall("f", [])

    def test_member_call(self):
        expr = parse("member(other.Owner, ResearchGroup)")
        assert expr == FunctionCall(
            "member",
            [AttributeRef("Owner", "other"), AttributeRef("ResearchGroup")],
        )

    def test_name_case_insensitive(self):
        assert parse("MEMBER(x, y)") == parse("member(x, y)")

    def test_nested_calls(self):
        expr = parse("strcat(toUpper(a), b)")
        assert isinstance(expr.args[0], FunctionCall)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",               # empty input
            "a +",            # dangling operator
            "a ? b",          # missing else branch
            "(a",             # unclosed paren
            "{1, }",          # dangling comma... actually `{1,}` lacks item
            "[a = ]",         # missing value
            "[1 = 2]",        # non-identifier attribute name
            "a b",            # trailing input
            "f(a,)",          # dangling comma in call
            "xs[1",           # unclosed subscript
            "a.",             # missing selector
        ],
    )
    def test_malformed_input_raises(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_message_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse("a +\n+")  # unary plus then EOF at line 2
        assert "line" in str(exc.value)
