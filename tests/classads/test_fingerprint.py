"""Property-based tests for the content fingerprint (PR 8).

The refresh fast path is only sound if the fingerprint is

* *stable*: structurally equal ads (order/case of top-level names aside)
  fingerprint identically, and a serialize round-trip preserves it;
* *sensitive*: any in-place mutation — rebind, add, delete — changes it;
* *volatile-aware*: excluded attributes contribute presence but not
  value, so a volatile-value change keeps the fingerprint while a
  volatile attribute appearing or vanishing changes it;
* mirrored exactly by :func:`payload_equal`, the sender-side change
  detector.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import (
    ClassAd,
    Literal,
    ad_wire_size,
    dumps,
    fingerprint,
    loads,
    payload_equal,
)
from repro.classads.lexer import KEYWORDS

_RESERVED = KEYWORDS | {"self", "other", "my", "target"}

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True).filter(
    lambda s: s.lower() not in _RESERVED
)

scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.text(alphabet=string.ascii_letters + string.digits + " _-./", max_size=16),
    st.booleans(),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(identifiers, children, max_size=3),
    ),
    max_leaves=8,
)

ads = st.dictionaries(identifiers, values, min_size=1, max_size=8).map(ClassAd)


def _case_flip(name: str) -> str:
    return name.swapcase()


class TestStability:
    @given(ads)
    @settings(max_examples=150, deadline=None)
    def test_equal_structure_equal_fingerprint(self, ad):
        """Rebuilding the same content — reversed insertion order,
        case-flipped spellings — fingerprints identically."""
        rebuilt = ClassAd([(_case_flip(k), v) for k, v in reversed(ad.items())])
        assert fingerprint(rebuilt) == fingerprint(ad)

    @given(ads)
    @settings(max_examples=150, deadline=None)
    def test_serialize_round_trip_preserves_fingerprint(self, ad):
        assert fingerprint(loads(dumps(ad))) == fingerprint(ad)

    @given(ads)
    @settings(max_examples=100, deadline=None)
    def test_copy_preserves_fingerprint_and_size(self, ad):
        dup = ad.copy()
        assert fingerprint(dup) == fingerprint(ad)
        assert ad_wire_size(dup) == ad_wire_size(ad)

    def test_literal_types_count(self):
        """Finer than ``==``: 3 and 3.0 serialize differently, so they
        must fingerprint differently (the safe direction)."""
        assert fingerprint(ClassAd({"X": 3})) != fingerprint(ClassAd({"X": 3.0}))
        assert not payload_equal(Literal(3), Literal(3.0))


class TestSensitivity:
    @given(ads, scalars)
    @settings(max_examples=150, deadline=None)
    def test_rebinding_an_attribute_changes_it(self, ad, value):
        name = ad.keys()[0]
        before = fingerprint(ad)
        old = ad[name]
        ad[name] = value
        if payload_equal(old, ad[name]):
            assert fingerprint(ad) == before
        else:
            assert fingerprint(ad) != before

    @given(ads)
    @settings(max_examples=100, deadline=None)
    def test_adding_and_deleting_changes_it(self, ad):
        before = fingerprint(ad)
        ad["ZZZ_NewAttr"] = 1
        added = fingerprint(ad)
        assert added != before
        del ad["ZZZ_NewAttr"]
        assert fingerprint(ad) == before

    @given(ads)
    @settings(max_examples=100, deadline=None)
    def test_payload_equal_mirrors_fingerprint(self, ad):
        dup = loads(dumps(ad))
        for name, expr in ad.items():
            assert payload_equal(expr, dup[name])


class TestVolatileExclusion:
    EXCLUDE = frozenset({"loadavg"})

    def test_excluded_value_changes_keep_fingerprint(self):
        a = ClassAd({"Type": "Machine", "LoadAvg": 0.05, "Memory": 64})
        b = ClassAd({"Type": "Machine", "LoadAvg": 1.25, "Memory": 64})
        assert fingerprint(a, exclude=self.EXCLUDE) == fingerprint(
            b, exclude=self.EXCLUDE
        )
        assert fingerprint(a) != fingerprint(b)

    def test_excluded_presence_still_counts(self):
        with_attr = ClassAd({"Type": "Machine", "LoadAvg": 0.05})
        without = ClassAd({"Type": "Machine"})
        assert fingerprint(with_attr, exclude=self.EXCLUDE) != fingerprint(
            without, exclude=self.EXCLUDE
        )

    def test_exclusion_is_case_insensitive(self):
        a = ClassAd({"Type": "Machine", "LOADAVG": 0.05})
        b = ClassAd({"Type": "Machine", "LOADAVG": 9.99})
        assert fingerprint(a, exclude=self.EXCLUDE) == fingerprint(
            b, exclude=self.EXCLUDE
        )

    def test_stable_change_still_detected_under_exclusion(self):
        a = ClassAd({"Type": "Machine", "LoadAvg": 0.05, "Memory": 64})
        b = ClassAd({"Type": "Machine", "LoadAvg": 0.05, "Memory": 128})
        assert fingerprint(a, exclude=self.EXCLUDE) != fingerprint(
            b, exclude=self.EXCLUDE
        )


class TestCacheInvalidation:
    def test_mutation_invalidates_cached_fingerprint(self):
        ad = ClassAd({"A": 1, "B": 2})
        first = fingerprint(ad)
        assert fingerprint(ad) == first  # cached path
        ad["A"] = 5
        assert fingerprint(ad) != first

    def test_wire_size_tracks_mutation(self):
        ad = ClassAd({"A": 1})
        small = ad_wire_size(ad)
        ad["B"] = "a much longer string payload"
        assert ad_wire_size(ad) > small

    def test_expression_attributes_compare_by_unparse(self):
        a = ClassAd.parse('[ Constraint = other.Memory >= 32 ]')
        b = ClassAd.parse('[ Constraint = other.Memory >= 32 ]')
        c = ClassAd.parse('[ Constraint = other.Memory >= 64 ]')
        assert payload_equal(a["Constraint"], b["Constraint"])
        assert not payload_equal(a["Constraint"], c["Constraint"])
        assert fingerprint(a) == fingerprint(b) != fingerprint(c)
