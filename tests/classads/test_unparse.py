"""Unit tests for the unparser: output style and re-parseability."""

import pytest

from repro.classads import ClassAd, parse, unparse, unparse_classad


def round_trip(text):
    expr = parse(text)
    assert parse(unparse(expr)) == expr
    return unparse(expr)


class TestLiterals:
    def test_integers(self):
        assert unparse(parse("42")) == "42"

    def test_reals(self):
        assert unparse(parse("2.5")) == "2.5"

    def test_real_round_trips_precisely(self):
        out = round_trip("0.042969")
        assert parse(out).value == 0.042969

    def test_strings_escaped(self):
        out = unparse(parse(r'"a\"b\n"'))
        assert out == r'"a\"b\n"'
        round_trip(r'"a\"b\n"')

    def test_keyword_constants(self):
        assert unparse(parse("true")) == "true"
        assert unparse(parse("false")) == "false"
        assert unparse(parse("undefined")) == "undefined"
        assert unparse(parse("error")) == "error"


class TestParenthesization:
    def test_no_spurious_parens(self):
        assert unparse(parse("a + b * c")) == "a + b * c"

    def test_required_parens_kept(self):
        assert unparse(parse("(a + b) * c")) == "(a + b) * c"

    def test_left_assoc_needs_parens_on_right(self):
        assert unparse(parse("a - (b - c)")) == "a - (b - c)"
        assert unparse(parse("(a - b) - c")) == "a - b - c"

    def test_conditional_nesting(self):
        text = "a ? b : c ? d : e"
        assert unparse(parse(text)) == text
        round_trip("(a ? b : c) ? d : e")

    def test_unary_inside_binary(self):
        round_trip("!a && !b")
        round_trip("-(a + b)")

    def test_figure1_constraint_round_trips(self):
        from repro.paper import FIGURE1_MACHINE

        ad = ClassAd.parse(FIGURE1_MACHINE)
        assert parse(unparse(ad["Constraint"])) == ad["Constraint"]


class TestCompound:
    def test_list(self):
        assert unparse(parse('{ 1, "a" }')) == '{ 1, "a" }'

    def test_empty_list(self):
        assert unparse(parse("{}")) == "{ }"

    def test_record(self):
        assert unparse(parse("[ a = 1; b = 2 ]")) == "[ a = 1; b = 2 ]"

    def test_empty_record(self):
        assert unparse(parse("[]")) == "[ ]"

    def test_selection_and_subscript(self):
        round_trip("other.cpu.Mips")
        round_trip("Friends[i + 1]")

    def test_function_call(self):
        assert (
            unparse(parse("member(other.Owner, ResearchGroup)"))
            == "member(other.Owner, ResearchGroup)"
        )

    def test_scoped_reference_prefix(self):
        assert unparse(parse("self.Memory")) == "self.Memory"
        assert unparse(parse("other.Memory")) == "other.Memory"


class TestClassAdPrinting:
    def test_multiline_figure_style(self):
        ad = ClassAd({"Type": "Machine", "Memory": 64})
        text = unparse_classad(ad)
        assert text.splitlines()[0] == "["
        assert text.splitlines()[-1] == "]"
        assert '  Type = "Machine";' in text

    def test_printed_ad_reparses_equal(self):
        from repro.paper import figure1_machine

        ad = figure1_machine()
        assert ClassAd.parse(unparse_classad(ad)) == ad

    def test_negative_literals_from_host_values(self):
        ad = ClassAd({"x": -5, "y": -2.5})
        again = ClassAd.parse(unparse_classad(ad))
        assert again.evaluate("x") == -5
        assert again.evaluate("y") == -2.5
