"""Unit + property tests for classad JSON serialization.

This format is the parallel scoring tier's wire protocol (PR 7): every
provider ad and class representative crosses a process boundary through
``to_json_obj``/``from_json_obj``, so every AST node type gets explicit
round-trip coverage here, plus a hypothesis sweep asserting the decoded
ad *evaluates identically* (``values_identical``) to the original.
"""

import json
import math
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import (
    UNDEFINED,
    AttributeRef,
    BinaryOp,
    ClassAd,
    Conditional,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
    is_error,
    is_undefined,
    parse,
    values_identical,
)
from repro.classads.serialize import (
    SerializationError,
    dumps,
    from_json_obj,
    loads,
    to_json_obj,
)
from repro.paper import figure1_machine, figure2_job

from tests.classads.test_properties import classads, expressions


class TestLiterals:
    def test_scalars_encode_natively(self):
        ad = ClassAd({"i": 3, "r": 2.5, "s": "text", "b": True})
        obj = to_json_obj(ad)
        assert obj == {"i": 3, "r": 2.5, "s": "text", "b": True}

    def test_undefined_and_error(self):
        ad = ClassAd({})
        ad.set_expr("u", "undefined")
        ad.set_expr("e", "error")
        obj = to_json_obj(ad)
        assert obj["u"] == {"$undefined": True}
        assert obj["e"] == {"$error": "error"}
        back = from_json_obj(obj)
        assert is_undefined(back.evaluate("u"))
        assert is_error(back.evaluate("e"))

    def test_json_null_decodes_to_undefined(self):
        ad = from_json_obj({"x": None})
        assert is_undefined(ad.evaluate("x"))

    def test_lists_and_nested_records(self):
        ad = ClassAd({"xs": [1, "two", [3]], "rec": {"a": 1}})
        obj = to_json_obj(ad)
        assert obj["xs"] == [1, "two", [3]]
        assert obj["rec"] == {"a": 1}
        assert from_json_obj(obj) == ad


class TestExpressions:
    def test_expression_rides_through_source(self):
        ad = ClassAd({})
        ad.set_expr("Constraint", "other.Memory >= self.Memory && Rank > 0")
        obj = to_json_obj(ad)
        assert "$expr" in obj["Constraint"]
        assert from_json_obj(obj) == ad

    def test_figure1_round_trips(self):
        ad = figure1_machine()
        assert loads(dumps(ad)) == ad

    def test_figure2_round_trips(self):
        ad = figure2_job()
        assert loads(dumps(ad)) == ad

    def test_output_is_valid_json(self):
        text = dumps(figure1_machine(), indent=2)
        parsed = json.loads(text)
        assert parsed["Name"] == "leonardo.cs.wisc.edu"

    def test_attribute_order_preserved(self):
        ad = ClassAd([("z", 1), ("a", 2), ("m", 3)])
        assert list(to_json_obj(ad)) == ["z", "a", "m"]

    def test_nonfinite_reals_survive(self):
        ad = ClassAd({"x": float("inf")})
        back = loads(dumps(ad))
        assert back.evaluate("x") == float("inf")


def _round_trip(ad):
    back = from_json_obj(to_json_obj(ad))
    assert back == ad
    assert loads(dumps(ad)) == ad
    return back


class TestEveryNodeType:
    """One explicit round trip per AST node class — the wire format must
    not lose any construct the language can express."""

    def test_literal_every_kind(self):
        ad = ClassAd({})
        ad["i"] = Literal(42)
        ad["neg"] = Literal(-(2**40))
        ad["r"] = Literal(3.25)
        ad["s"] = Literal('quote " backslash \\ newline \n tab \t')
        ad["t"] = Literal(True)
        ad["f"] = Literal(False)
        ad["u"] = Literal(UNDEFINED)
        _round_trip(ad)

    def test_literal_error_value(self):
        ad = ClassAd({})
        ad.set_expr("e", "error")
        back = _round_trip(ad)
        assert is_error(back.evaluate("e"))

    def test_literal_nonfinite_reals(self):
        # Nonfinite reals ride through ``real("inf")`` source text, so
        # the decoded AST is a FunctionCall, not a Literal — equality is
        # semantic, not structural.
        ad = ClassAd({"pinf": float("inf"), "ninf": float("-inf")})
        back = loads(dumps(ad))
        assert back.evaluate("pinf") == float("inf")
        assert back.evaluate("ninf") == float("-inf")

    def test_literal_nan_survives(self):
        ad = ClassAd({"x": float("nan")})
        back = loads(dumps(ad))
        assert math.isnan(back.evaluate("x"))

    def test_attribute_ref_all_scopes(self):
        ad = ClassAd({})
        ad["plain"] = AttributeRef("Memory", None)
        ad["via_self"] = AttributeRef("Memory", "self")
        ad["via_other"] = AttributeRef("Memory", "other")
        _round_trip(ad)

    def test_unary_op(self):
        ad = ClassAd({})
        for i, op in enumerate(("!", "-", "+")):
            ad[f"u{i}"] = UnaryOp(op, AttributeRef("x", None))
        _round_trip(ad)

    def test_binary_op_every_operator(self):
        ops = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=",
               "==", "!=", "&&", "||", "is", "isnt"]
        ad = ClassAd({})
        for i, op in enumerate(ops):
            ad[f"b{i}"] = BinaryOp(op, AttributeRef("x", None), Literal(2))
        _round_trip(ad)

    def test_conditional(self):
        ad = ClassAd({})
        ad.set_expr("c", 'LoadAvg < 0.3 ? "idle" : "busy"')
        _round_trip(ad)

    def test_list_expr(self):
        # A pure-value list encodes as a JSON array; a list holding a
        # non-literal expression rides each element through its own
        # encoding ({"$expr": ...} inside the array).
        ad = ClassAd({})
        ad["vals"] = ListExpr([Literal(1), Literal("two"), Literal(3.0)])
        ad["exprs"] = ListExpr([Literal(1), BinaryOp("+", Literal(1), Literal(2))])
        ad["nested"] = ListExpr([ListExpr([Literal(1)]), ListExpr([])])
        back = _round_trip(ad)
        assert to_json_obj(ad)["vals"] == [1, "two", 3.0]
        assert back.evaluate("exprs")[1] == 3

    def test_record_expr(self):
        ad = ClassAd({})
        ad["rec"] = RecordExpr([
            ("Kind", Literal("gold")),
            ("Bonus", BinaryOp("*", Literal(2), Literal(3))),
            ("Inner", RecordExpr([("deep", Literal(True))])),
        ])
        _round_trip(ad)

    def test_select(self):
        ad = ClassAd({})
        ad.set_expr("s", "Tier.Kind")
        ad.set_expr("chained", "self.Tier.Inner.deep")
        _round_trip(ad)

    def test_subscript(self):
        ad = ClassAd({})
        ad["sub"] = Subscript(
            ListExpr([Literal(10), Literal(20)]), Literal(1)
        )
        ad.set_expr("dyn", "Groups[i + 1]")
        _round_trip(ad)

    def test_function_call(self):
        ad = ClassAd({})
        ad["fc"] = FunctionCall("member", [Literal("cs"), AttributeRef("Groups", None)])
        ad.set_expr("nullary", "size({})")
        _round_trip(ad)

    def test_deeply_mixed_expression(self):
        ad = ClassAd({})
        ad.set_expr(
            "Rank",
            'member(other.Owner, ResearchGroup) ? {1, 2}[0] * size(Groups)'
            " : -(KFlops / 1E3)",
        )
        _round_trip(ad)


class TestErrors:
    def test_bad_top_level(self):
        with pytest.raises(SerializationError):
            from_json_obj([1, 2])

    def test_bad_expr_payload(self):
        with pytest.raises(SerializationError):
            from_json_obj({"x": {"$expr": 42}})

    def test_unparseable_expr_payload(self):
        # parse failures surface as SerializationError, not ParseError
        with pytest.raises(SerializationError):
            from_json_obj({"x": {"$expr": "1 +"}})

    def test_unlexable_expr_payload(self):
        with pytest.raises(SerializationError):
            from_json_obj({"x": {"$expr": "`"}})

    def test_invalid_json_text(self):
        with pytest.raises(SerializationError):
            loads("{not json")

    def test_loads_rejects_non_string(self):
        with pytest.raises(SerializationError):
            loads(b'{"x": 1}')
        with pytest.raises(SerializationError):
            loads(None)

    def test_non_string_attribute_name(self):
        with pytest.raises(SerializationError):
            from_json_obj({1: "x"})

    def test_non_string_nested_record_field(self):
        with pytest.raises(SerializationError):
            from_json_obj({"rec": {"inner": {2: "x"}}})

    def test_undecodable_value_type(self):
        with pytest.raises(SerializationError):
            from_json_obj({"x": object()})


# -- property: serialization round trip --------------------------------------

_RESERVED = {"true", "false", "undefined", "error", "is", "isnt", "self", "other", "my", "target"}
identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.lower() not in _RESERVED
)
scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=15),
    st.booleans(),
    st.just(UNDEFINED),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(identifiers, children, max_size=4),
    ),
    max_leaves=20,
)


@pytest.mark.slow
class TestRoundTripProperty:
    @given(st.dictionaries(identifiers, values, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_value_ads_round_trip(self, payload):
        ad = ClassAd(payload)
        assert loads(dumps(ad)) == ad

    @given(st.dictionaries(identifiers, st.sampled_from([
        "other.Memory >= self.Memory",
        "member(other.Owner, ResearchGroup) * 10",
        "a ? b : c",
        "{1, 2, 3}[i]",
        "x is undefined",
    ]), max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_expression_ads_round_trip(self, payload):
        ad = ClassAd({name: parse(src) for name, src in payload.items()})
        assert loads(dumps(ad)) == ad


@pytest.mark.slow
class TestEvaluationPreserved:
    """The wire format must be *semantically* lossless: the decoded ad
    evaluates identically to the original under ``values_identical``,
    the language's strictest comparison (distinguishes 3 from 3.0,
    undefined from false, error reasons).  This is the property the
    parallel scoring workers rely on."""

    @given(expressions(max_leaves=20), classads(depth=4))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_expressions_evaluate_identically(self, expr, other_ad):
        ad = ClassAd([("Probe", expr)])
        back = from_json_obj(to_json_obj(ad))
        assert values_identical(
            ad.evaluate("Probe", other=other_ad),
            back.evaluate("Probe", other=other_ad),
        )

    @given(classads(depth=6), classads(depth=4))
    @settings(max_examples=100, deadline=None)
    def test_whole_ads_evaluate_identically(self, ad, other_ad):
        back = from_json_obj(to_json_obj(ad))
        for name in ad.keys():
            assert values_identical(
                ad.evaluate(name, other=other_ad),
                back.evaluate(name, other=other_ad),
            )
