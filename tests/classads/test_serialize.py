"""Unit + property tests for classad JSON serialization."""

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd, UNDEFINED, is_error, is_undefined, parse
from repro.classads.serialize import (
    SerializationError,
    dumps,
    from_json_obj,
    loads,
    to_json_obj,
)
from repro.paper import figure1_machine, figure2_job


class TestLiterals:
    def test_scalars_encode_natively(self):
        ad = ClassAd({"i": 3, "r": 2.5, "s": "text", "b": True})
        obj = to_json_obj(ad)
        assert obj == {"i": 3, "r": 2.5, "s": "text", "b": True}

    def test_undefined_and_error(self):
        ad = ClassAd({})
        ad.set_expr("u", "undefined")
        ad.set_expr("e", "error")
        obj = to_json_obj(ad)
        assert obj["u"] == {"$undefined": True}
        assert obj["e"] == {"$error": "error"}
        back = from_json_obj(obj)
        assert is_undefined(back.evaluate("u"))
        assert is_error(back.evaluate("e"))

    def test_json_null_decodes_to_undefined(self):
        ad = from_json_obj({"x": None})
        assert is_undefined(ad.evaluate("x"))

    def test_lists_and_nested_records(self):
        ad = ClassAd({"xs": [1, "two", [3]], "rec": {"a": 1}})
        obj = to_json_obj(ad)
        assert obj["xs"] == [1, "two", [3]]
        assert obj["rec"] == {"a": 1}
        assert from_json_obj(obj) == ad


class TestExpressions:
    def test_expression_rides_through_source(self):
        ad = ClassAd({})
        ad.set_expr("Constraint", "other.Memory >= self.Memory && Rank > 0")
        obj = to_json_obj(ad)
        assert "$expr" in obj["Constraint"]
        assert from_json_obj(obj) == ad

    def test_figure1_round_trips(self):
        ad = figure1_machine()
        assert loads(dumps(ad)) == ad

    def test_figure2_round_trips(self):
        ad = figure2_job()
        assert loads(dumps(ad)) == ad

    def test_output_is_valid_json(self):
        text = dumps(figure1_machine(), indent=2)
        parsed = json.loads(text)
        assert parsed["Name"] == "leonardo.cs.wisc.edu"

    def test_attribute_order_preserved(self):
        ad = ClassAd([("z", 1), ("a", 2), ("m", 3)])
        assert list(to_json_obj(ad)) == ["z", "a", "m"]

    def test_nonfinite_reals_survive(self):
        ad = ClassAd({"x": float("inf")})
        back = loads(dumps(ad))
        assert back.evaluate("x") == float("inf")


class TestErrors:
    def test_bad_top_level(self):
        with pytest.raises(SerializationError):
            from_json_obj([1, 2])

    def test_bad_expr_payload(self):
        with pytest.raises(SerializationError):
            from_json_obj({"x": {"$expr": 42}})

    def test_invalid_json_text(self):
        with pytest.raises(SerializationError):
            loads("{not json")


# -- property: serialization round trip --------------------------------------

_RESERVED = {"true", "false", "undefined", "error", "is", "isnt", "self", "other", "my", "target"}
identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.lower() not in _RESERVED
)
scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=15),
    st.booleans(),
    st.just(UNDEFINED),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(identifiers, children, max_size=4),
    ),
    max_leaves=20,
)


@pytest.mark.slow
class TestRoundTripProperty:
    @given(st.dictionaries(identifiers, values, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_value_ads_round_trip(self, payload):
        ad = ClassAd(payload)
        assert loads(dumps(ad)) == ad

    @given(st.dictionaries(identifiers, st.sampled_from([
        "other.Memory >= self.Memory",
        "member(other.Owner, ResearchGroup) * 10",
        "a ? b : c",
        "{1, 2, 3}[i]",
        "x is undefined",
    ]), max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_expression_ads_round_trip(self, payload):
        ad = ClassAd({name: parse(src) for name, src in payload.items()})
        assert loads(dumps(ad)) == ad
