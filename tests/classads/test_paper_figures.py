"""Figure 1 / Figure 2 fidelity tests (experiments F1 and F2).

These encode Section 4's narration of the Figure 1 policy:

  "the workstation is never willing to run applications submitted by
   users rival and riffraff, it is always willing to run the jobs of
   members of the research group, friends may use the resource only if
   the workstation is idle (as determined by keyboard activity and load
   average), and others may only use the workstation at night."

and the Rank tiers: "research jobs have higher priority than friends'
jobs, which in turn have higher priority than other jobs."
"""

import pytest

from repro.classads import is_true, is_undefined, rank_value
from repro.paper import (
    figure1_machine,
    figure1_machine_at,
    figure2_job,
    job_from,
)

NOON = 12 * 3600
NIGHT = 22 * 3600
EARLY = 7 * 3600
IDLE_KEYBOARD = 1432  # > 15 minutes
BUSY_KEYBOARD = 30  # owner typing


def machine_accepts(machine, job):
    return is_true(machine.evaluate("Constraint", other=job))


class TestFigure1OwnerPolicy:
    def test_research_group_always_welcome(self):
        machine = figure1_machine_at(NOON, BUSY_KEYBOARD, load_avg=2.0)
        assert machine_accepts(machine, job_from("raman"))

    @pytest.mark.parametrize("owner", ["raman", "miron", "solomon", "jbasney"])
    def test_all_research_group_members(self, owner):
        machine = figure1_machine_at(NOON, BUSY_KEYBOARD, load_avg=2.0)
        assert machine_accepts(machine, job_from(owner))

    def test_untrusted_never_welcome_even_at_night(self):
        machine = figure1_machine_at(NIGHT, IDLE_KEYBOARD, load_avg=0.0)
        assert not machine_accepts(machine, job_from("rival"))
        assert not machine_accepts(machine, job_from("riffraff"))

    def test_friend_welcome_only_when_idle(self):
        idle = figure1_machine_at(NOON, IDLE_KEYBOARD, load_avg=0.1)
        assert machine_accepts(idle, job_from("tannenba"))

    def test_friend_rejected_when_keyboard_active(self):
        busy = figure1_machine_at(NOON, BUSY_KEYBOARD, load_avg=0.1)
        assert not machine_accepts(busy, job_from("tannenba"))

    def test_friend_rejected_when_loaded(self):
        loaded = figure1_machine_at(NOON, IDLE_KEYBOARD, load_avg=0.5)
        assert not machine_accepts(loaded, job_from("wright"))

    def test_stranger_welcome_at_night(self):
        machine = figure1_machine_at(NIGHT, BUSY_KEYBOARD, load_avg=3.0)
        assert machine_accepts(machine, job_from("stranger"))

    def test_stranger_welcome_early_morning(self):
        machine = figure1_machine_at(EARLY)
        assert machine_accepts(machine, job_from("stranger"))

    def test_stranger_rejected_during_work_day(self):
        machine = figure1_machine_at(NOON, IDLE_KEYBOARD, load_avg=0.0)
        assert not machine_accepts(machine, job_from("stranger"))

    def test_day_boundaries(self):
        # Policy: DayTime < 8*3600 || DayTime > 18*3600.
        stranger = job_from("stranger")
        assert machine_accepts(figure1_machine_at(8 * 3600 - 1), stranger)
        assert not machine_accepts(figure1_machine_at(8 * 3600), stranger)
        assert not machine_accepts(figure1_machine_at(18 * 3600), stranger)
        assert machine_accepts(figure1_machine_at(18 * 3600 + 1), stranger)

    def test_job_without_owner_is_not_matched(self):
        machine = figure1_machine_at(NOON)
        anonymous = figure2_job()
        del anonymous["Owner"]
        # member(undefined, ...) is undefined; the whole Constraint
        # becomes undefined, which the matchmaker treats as no-match.
        assert is_undefined(machine.evaluate("Constraint", other=anonymous))


class TestFigure1RankTiers:
    def test_research_group_rank(self):
        machine = figure1_machine()
        assert machine.evaluate("Rank", other=job_from("raman")) == 10

    def test_friend_rank(self):
        machine = figure1_machine()
        assert machine.evaluate("Rank", other=job_from("tannenba")) == 1

    def test_stranger_rank(self):
        machine = figure1_machine()
        assert machine.evaluate("Rank", other=job_from("stranger")) == 0

    def test_tiers_are_ordered(self):
        machine = figure1_machine()
        ranks = [
            rank_value(machine.evaluate("Rank", other=job_from(owner)))
            for owner in ("miron", "wright", "stranger")
        ]
        assert ranks == sorted(ranks, reverse=True)
        assert len(set(ranks)) == 3


class TestFigure2JobRequirements:
    def test_job_matches_leonardo(self):
        job = figure2_job()
        assert is_true(job.evaluate("Constraint", other=figure1_machine()))

    def test_wrong_arch_rejected(self):
        machine = figure1_machine()
        machine["Arch"] = "SPARC"
        assert not is_true(figure2_job().evaluate("Constraint", other=machine))

    def test_wrong_opsys_rejected(self):
        machine = figure1_machine()
        machine["OpSys"] = "LINUX"
        assert not is_true(figure2_job().evaluate("Constraint", other=machine))

    def test_insufficient_disk_rejected(self):
        machine = figure1_machine()
        machine["Disk"] = 5_000
        assert not is_true(figure2_job().evaluate("Constraint", other=machine))

    def test_insufficient_memory_rejected(self):
        machine = figure1_machine()
        machine["Memory"] = 30  # job needs self.Memory = 31
        assert not is_true(figure2_job().evaluate("Constraint", other=machine))

    def test_memory_boundary_exact(self):
        machine = figure1_machine()
        machine["Memory"] = 31
        assert is_true(figure2_job().evaluate("Constraint", other=machine))

    def test_non_machine_ad_rejected(self):
        other_job = figure2_job()
        assert not is_true(figure2_job().evaluate("Constraint", other=other_job))

    def test_machine_without_type_yields_undefined(self):
        machine = figure1_machine()
        del machine["Type"]
        assert is_undefined(figure2_job().evaluate("Constraint", other=machine))


class TestFigure2JobRank:
    def test_rank_formula(self):
        # KFlops/1E3 + other.Memory/32 with leonardo's numbers.
        job = figure2_job()
        value = job.evaluate("Rank", other=figure1_machine())
        assert value == pytest.approx(21893 / 1000 + 64 / 32)

    def test_rank_prefers_faster_machine(self):
        job = figure2_job()
        slow = figure1_machine()
        slow["KFlops"] = 1000
        fast = figure1_machine()
        fast["KFlops"] = 50000
        assert rank_value(job.evaluate("Rank", other=fast)) > rank_value(
            job.evaluate("Rank", other=slow)
        )

    def test_rank_on_machine_without_kflops_is_zero_for_ordering(self):
        job = figure2_job()
        machine = figure1_machine()
        del machine["KFlops"]
        assert rank_value(job.evaluate("Rank", other=machine)) == 0.0


class TestRoundTripFidelity:
    def test_figure1_survives_print_parse(self):
        from repro.classads import ClassAd

        ad = figure1_machine()
        assert ClassAd.parse(str(ad)) == ad

    def test_figure2_survives_print_parse(self):
        from repro.classads import ClassAd

        ad = figure2_job()
        assert ClassAd.parse(str(ad)) == ad


class TestFigure1LiteralPrecedenceNote:
    """Reproduction note F1: the Constraint exactly as printed in Figure 1
    parses under C precedence as `(!untrusted && Rank>=10) ? ...`, which
    admits untrusted users at night — contradicting Section 4's prose.
    Our canonical FIGURE1_MACHINE parenthesizes to match the prose; this
    test pins down both readings so the discrepancy stays documented."""

    def test_literal_text_admits_untrusted_at_night(self):
        from repro.paper import FIGURE1_CONSTRAINT_LITERAL, figure1_machine_at

        machine = figure1_machine_at(NIGHT, IDLE_KEYBOARD, load_avg=0.0)
        machine.set_expr("Constraint", FIGURE1_CONSTRAINT_LITERAL)
        assert machine_accepts(machine, job_from("rival"))  # the "bug"

    def test_canonical_ad_matches_narration(self):
        machine = figure1_machine_at(NIGHT, IDLE_KEYBOARD, load_avg=0.0)
        assert not machine_accepts(machine, job_from("rival"))
