"""Property-based tests (hypothesis) for the classad language.

Invariants under test:

* parse∘unparse is the identity on expression ASTs;
* evaluation is *total*: any generated ad/expression evaluates to a value
  without raising;
* three-valued logic laws: &&/|| commute w.r.t. logical outcome, `is`
  always returns a Boolean, strict operators propagate undefined;
* the match predicate is symmetric in its two ads.
"""

import string

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import (
    UNDEFINED,
    AttributeRef,
    BinaryOp,
    ClassAd,
    Conditional,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
    evaluate,
    is_error,
    is_undefined,
    parse,
    unparse,
    values_identical,
)
from repro.classads.lexer import KEYWORDS

pytestmark = pytest.mark.slow

_RESERVED = KEYWORDS | {"self", "other", "my", "target"}

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True).filter(
    lambda s: s.lower() not in _RESERVED
)

safe_strings = st.text(
    alphabet=string.ascii_letters + string.digits + " _-./!#$,:;<>()[]{}'\"\\\n\t",
    max_size=20,
)

literals = st.one_of(
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False),
    safe_strings,
    st.booleans(),
    st.just(UNDEFINED),
).map(Literal)

references = st.builds(
    AttributeRef,
    identifiers,
    st.sampled_from([None, "self", "other"]),
)

_BINOPS = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||", "is", "isnt"]


def expressions(max_leaves=25):
    return st.recursive(
        st.one_of(literals, references),
        lambda children: st.one_of(
            st.builds(UnaryOp, st.sampled_from(["!", "-", "+"]), children),
            st.builds(BinaryOp, st.sampled_from(_BINOPS), children, children),
            st.builds(Conditional, children, children, children),
            st.lists(children, max_size=3).map(ListExpr),
            st.lists(st.tuples(identifiers, children), max_size=3, unique_by=lambda kv: kv[0].lower()).map(RecordExpr),
            st.builds(Select, children, identifiers),
            st.builds(Subscript, children, children),
            st.builds(FunctionCall, st.sampled_from(["member", "size", "strcat", "isUndefined", "min"]), st.lists(children, max_size=3)),
        ),
        max_leaves=max_leaves,
    )


def classads(depth=8):
    return st.lists(
        st.tuples(identifiers, expressions(depth)),
        max_size=6,
        unique_by=lambda kv: kv[0].lower(),
    ).map(ClassAd)


class TestRoundTrip:
    @given(expressions())
    @settings(max_examples=300, deadline=None)
    def test_parse_unparse_identity(self, expr):
        assert parse(unparse(expr)) == expr

    @given(classads())
    @settings(max_examples=100, deadline=None)
    def test_classad_print_parse_identity(self, ad):
        assert ClassAd.parse(str(ad)) == ad


class TestTotality:
    @given(expressions(), classads(depth=4), classads(depth=4))
    @settings(max_examples=300, deadline=None)
    def test_evaluation_never_raises(self, expr, self_ad, other_ad):
        evaluate(expr, self_ad, other=other_ad)  # must not raise

    @given(classads())
    @settings(max_examples=100, deadline=None)
    def test_every_attribute_evaluates(self, ad):
        for name in ad.keys():
            ad.evaluate(name)


class TestLogicLaws:
    @given(expressions(max_leaves=8), expressions(max_leaves=8), classads(depth=3))
    @settings(max_examples=200, deadline=None)
    def test_and_commutes(self, a, b, ad):
        left = evaluate(BinaryOp("&&", a, b), ad)
        right = evaluate(BinaryOp("&&", b, a), ad)
        assert values_identical(left, right)

    @given(expressions(max_leaves=8), expressions(max_leaves=8), classads(depth=3))
    @settings(max_examples=200, deadline=None)
    def test_or_commutes(self, a, b, ad):
        left = evaluate(BinaryOp("||", a, b), ad)
        right = evaluate(BinaryOp("||", b, a), ad)
        assert values_identical(left, right)

    @given(expressions(max_leaves=10), classads(depth=3))
    @settings(max_examples=200, deadline=None)
    def test_is_always_boolean(self, e, ad):
        result = evaluate(BinaryOp("is", e, Literal(3)), ad)
        assert result is True or result is False

    @given(expressions(max_leaves=10), classads(depth=3))
    @settings(max_examples=200, deadline=None)
    def test_de_morgan_under_three_values(self, e, ad):
        # !(a && b) and (!a || !b) agree whenever both are defined booleans.
        a = e
        b = Literal(True)
        lhs = evaluate(UnaryOp("!", BinaryOp("&&", a, b)), ad)
        rhs = evaluate(BinaryOp("||", UnaryOp("!", a), UnaryOp("!", b)), ad)
        if isinstance(lhs, bool) and isinstance(rhs, bool):
            assert lhs == rhs

    @given(st.sampled_from(["+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!="]), literals)
    @settings(max_examples=100, deadline=None)
    def test_strict_operators_propagate_undefined(self, op, lit):
        result = evaluate(BinaryOp(op, Literal(UNDEFINED), lit))
        assert is_undefined(result) or is_error(result)
        # error only possible when the *other* operand is error-typed,
        # which `literals` never generates — so strictly undefined:
        assert is_undefined(result)

    @given(expressions(max_leaves=6), classads(depth=3))
    @settings(max_examples=150, deadline=None)
    def test_double_negation_on_booleans(self, e, ad):
        value = evaluate(e, ad)
        double = evaluate(UnaryOp("!", UnaryOp("!", e)), ad)
        if isinstance(value, bool):
            assert double == value


class TestDeterminism:
    @given(expressions(), classads(depth=4))
    @settings(max_examples=100, deadline=None)
    def test_evaluation_is_deterministic(self, expr, ad):
        assert values_identical(evaluate(expr, ad), evaluate(expr, ad))

    @given(classads(depth=4), classads(depth=4))
    @settings(max_examples=100, deadline=None)
    def test_match_predicate_symmetric(self, a, b):
        from repro.matchmaking import constraints_satisfied

        assert constraints_satisfied(a, b) == constraints_satisfied(b, a)
