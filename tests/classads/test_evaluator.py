"""Unit tests for evaluator semantics: operators, scoping, cycles, budgets."""

import pytest

from repro.classads import (
    ERROR,
    UNDEFINED,
    ClassAd,
    evaluate,
    is_error,
    is_undefined,
    parse,
)


def ev(text, self_ad=None, other=None):
    return evaluate(parse(text), self_ad, other=other)


class TestArithmetic:
    def test_integer_addition(self):
        assert ev("2 + 3") == 5

    def test_real_promotion(self):
        assert ev("2 + 0.5") == 2.5

    def test_integer_division_truncates(self):
        assert ev("10 / 3") == 3
        assert ev("10 / 3") is not True  # sanity: int, not bool

    def test_integer_division_truncates_toward_zero(self):
        assert ev("-7 / 2") == -3
        assert ev("7 / -2") == -3

    def test_real_division(self):
        assert ev("10 / 4.0") == 2.5

    def test_division_by_zero_is_error(self):
        assert is_error(ev("1 / 0"))
        assert is_error(ev("1.0 / 0"))

    def test_modulus(self):
        assert ev("10 % 3") == 1

    def test_modulus_sign_follows_dividend(self):
        assert ev("-7 % 2") == -1
        assert ev("7 % -2") == 1

    def test_modulus_by_zero_is_error(self):
        assert is_error(ev("5 % 0"))

    def test_modulus_requires_integers(self):
        assert is_error(ev("5.5 % 2"))

    def test_boolean_promotes_to_integer(self):
        # Figure 1: Rank = member(...) * 10 + member(...).
        assert ev("true * 10 + false") == 10

    def test_string_arithmetic_is_error(self):
        assert is_error(ev('"a" + "b"'))

    def test_unary_minus(self):
        assert ev("-(3 + 4)") == -7

    def test_unary_plus(self):
        assert ev("+5") == 5

    def test_unary_minus_of_string_is_error(self):
        assert is_error(ev('-"x"'))


class TestStrictness:
    """Most operators are strict w.r.t. undefined (Section 3.1)."""

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="])
    def test_undefined_left_operand(self, op):
        assert is_undefined(ev(f"undefined {op} 32"))

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="])
    def test_undefined_right_operand(self, op):
        assert is_undefined(ev(f"32 {op} undefined"))

    def test_paper_examples_of_strict_comparisons(self):
        """All four listed forms in Section 3.1 evaluate to undefined when
        the target has no Memory attribute."""
        machine = ClassAd({"Type": "Machine"})  # no Memory
        job = ClassAd({"Type": "Job"})
        for text in [
            "other.Memory > 32",
            "other.Memory == 32",
            "other.Memory != 32",
            "!(other.Memory == 32)",
        ]:
            assert is_undefined(ev(text, job, other=machine)), text

    def test_error_dominates_undefined(self):
        assert is_error(ev('(1/0) + undefined'))
        assert is_error(ev('undefined + (1/0)'))

    def test_negation_of_undefined(self):
        assert is_undefined(ev("!undefined"))

    def test_negation_of_error(self):
        assert is_error(ev("!error"))


class TestComparisons:
    def test_numeric_ordering(self):
        assert ev("3 < 4") is True
        assert ev("4 <= 4") is True
        assert ev("3 > 4") is False
        assert ev("4 >= 5") is False

    def test_mixed_int_real_comparison(self):
        assert ev("3 < 3.5") is True

    def test_string_equality_case_insensitive(self):
        assert ev('"INTEL" == "intel"') is True
        assert ev('"INTEL" != "intel"') is False

    def test_string_ordering_case_insensitive(self):
        assert ev('"apple" < "BANANA"') is True

    def test_string_number_comparison_is_error(self):
        assert is_error(ev('"32" == 32'))

    def test_boolean_equality(self):
        assert ev("true == true") is True
        assert ev("true == 1") is True  # bools promote

    def test_list_comparison_is_error(self):
        assert is_error(ev("{1} == {1}"))


class TestBooleanLogic:
    """&& and || are non-strict on both arguments (Section 3.1)."""

    def test_false_and_undefined(self):
        assert ev("false && undefined") is False

    def test_undefined_and_false(self):
        assert ev("undefined && false") is False

    def test_true_and_undefined(self):
        assert is_undefined(ev("true && undefined"))

    def test_true_or_undefined(self):
        assert ev("true || undefined") is True

    def test_undefined_or_true(self):
        assert ev("undefined || true") is True

    def test_false_or_undefined(self):
        assert is_undefined(ev("false || undefined"))

    def test_false_and_error_short_circuits(self):
        assert ev("false && error") is False

    def test_true_or_error_short_circuits(self):
        assert ev("true || error") is True

    def test_error_and_true(self):
        assert is_error(ev("error && true"))

    def test_undefined_or_undefined(self):
        assert is_undefined(ev("undefined || undefined"))

    def test_paper_mips_kflops_example(self):
        """`Mips >= 10 || KFlops >= 1000` is true whenever either attribute
        exists and satisfies its bound (Section 3.1)."""
        only_mips = ClassAd({"Mips": 104})
        only_kflops = ClassAd({"KFlops": 21893})
        neither = ClassAd({})
        text = "Mips >= 10 || KFlops >= 1000"
        assert ev(text, only_mips) is True
        assert ev(text, only_kflops) is True
        assert is_undefined(ev(text, neither))

    def test_nonboolean_operand_is_error(self):
        assert is_error(ev("1 && true"))


class TestIsIsnt:
    """is/isnt always return Booleans — never undefined (Section 3.1)."""

    def test_undefined_is_undefined(self):
        assert ev("undefined is undefined") is True

    def test_value_is_undefined(self):
        assert ev("3 is undefined") is False

    def test_paper_explicit_comparison_idiom(self):
        machine_without_memory = ClassAd({"Type": "Machine"})
        job = ClassAd({})
        result = ev(
            "other.Memory is undefined || other.Memory < 32",
            job,
            other=machine_without_memory,
        )
        assert result is True

    def test_is_distinguishes_int_and_real(self):
        assert ev("1 is 1.0") is False
        assert ev("1 == 1.0") is True

    def test_is_distinguishes_bool_and_int(self):
        assert ev("true is 1") is False

    def test_is_strings_case_sensitive(self):
        assert ev('"INTEL" is "intel"') is False
        assert ev('"INTEL" is "INTEL"') is True

    def test_isnt_negates(self):
        assert ev("3 isnt 4") is True
        assert ev("undefined isnt undefined") is False

    def test_error_is_error(self):
        assert ev("error is error") is True
        assert ev("(1/0) is error") is True

    def test_list_identity(self):
        assert ev("{1, 2} is {1, 2}") is True
        assert ev("{1, 2} is {1, 2.0}") is False


class TestConditional:
    def test_true_branch(self):
        assert ev("true ? 1 : 2") == 1

    def test_false_branch(self):
        assert ev("false ? 1 : 2") == 2

    def test_undefined_guard(self):
        assert is_undefined(ev("undefined ? 1 : 2"))

    def test_error_guard(self):
        assert is_error(ev("(1/0) ? 1 : 2"))

    def test_nonboolean_guard_is_error(self):
        assert is_error(ev("5 ? 1 : 2"))

    def test_untaken_branch_not_evaluated(self):
        assert ev("true ? 1 : (1/0)") == 1


class TestAttributeResolution:
    def test_bare_name_resolves_in_self(self):
        ad = ClassAd({"Memory": 64})
        assert ev("Memory", ad) == 64

    def test_missing_attribute_is_undefined(self):
        ad = ClassAd({})
        assert is_undefined(ev("Memory", ad))

    def test_self_prefix(self):
        job = ClassAd({"Memory": 31})
        machine = ClassAd({"Memory": 64})
        assert ev("self.Memory", job, other=machine) == 31

    def test_other_prefix(self):
        job = ClassAd({"Memory": 31})
        machine = ClassAd({"Memory": 64})
        assert ev("other.Memory", job, other=machine) == 64

    def test_self_shadows_other_for_bare_names(self):
        job = ClassAd({"Memory": 31})
        machine = ClassAd({"Memory": 64})
        assert ev("Memory", job, other=machine) == 31

    def test_bare_name_falls_through_to_other(self):
        # Figure 2's Constraint references Arch, which only the machine has.
        job = ClassAd({"Memory": 31})
        machine = ClassAd({"Arch": "INTEL"})
        assert ev('Arch == "INTEL"', job, other=machine) is True

    def test_attribute_from_other_evaluates_in_its_home_ad(self):
        # The machine's Tier references the machine's own Memory even when
        # the job triggers the evaluation via fallthrough.
        machine = ClassAd({"Memory": 64})
        machine.set_expr("Tier", "Memory / 32")
        job = ClassAd({"Memory": 31})
        assert ev("Tier", job, other=machine) == 2

    def test_other_scoped_expr_swaps_self_other(self):
        # machine.Wants references *its* other (the job).
        machine = ClassAd({})
        machine.set_expr("Wants", 'other.Owner == "raman"')
        job = ClassAd({"Owner": "raman"})
        assert ev("other.Wants", job, other=machine) is True

    def test_attribute_names_case_insensitive(self):
        ad = ClassAd({"KeyboardIdle": 1432})
        assert ev("KEYBOARDIDLE", ad) == 1432

    def test_other_reference_without_other_ad(self):
        ad = ClassAd({"Memory": 64})
        assert is_undefined(ev("other.Memory", ad))


class TestNestedRecords:
    def test_select_into_nested_record(self):
        ad = ClassAd.parse("[ cpu = [ mips = 104; flops = 21893 ] ]")
        assert ev("cpu.mips", ad) == 104

    def test_nested_record_sibling_reference(self):
        ad = ClassAd.parse("[ cpu = [ mips = 104; fast = mips > 100 ] ]")
        assert ev("cpu.fast", ad) is True

    def test_nested_record_sees_enclosing_scope(self):
        ad = ClassAd.parse("[ base = 10; inner = [ v = base + 1 ] ]")
        assert ev("inner.v", ad) == 11

    def test_inner_shadows_outer(self):
        ad = ClassAd.parse("[ v = 1; inner = [ v = 2; w = v ] ]")
        assert ev("inner.w", ad) == 2

    def test_select_on_non_record_is_error(self):
        ad = ClassAd({"x": 5})
        assert is_error(ev("x.y", ad))

    def test_select_on_undefined_is_undefined(self):
        ad = ClassAd({})
        assert is_undefined(ev("nothing.y", ad))

    def test_missing_attr_of_record_is_undefined(self):
        ad = ClassAd.parse("[ cpu = [ mips = 104 ] ]")
        assert is_undefined(ev("cpu.missing", ad))


class TestSubscripts:
    def test_list_indexing(self):
        ad = ClassAd.parse('[ Friends = { "tannenba", "wright" } ]')
        assert ev("Friends[1]", ad) == "wright"

    def test_out_of_range_is_error(self):
        ad = ClassAd.parse("[ xs = {1, 2} ]")
        assert is_error(ev("xs[5]", ad))
        assert is_error(ev("xs[-1]", ad))

    def test_non_integer_index_is_error(self):
        ad = ClassAd.parse("[ xs = {1} ]")
        assert is_error(ev('xs["a"]', ad))

    def test_subscript_of_non_list_is_error(self):
        ad = ClassAd.parse("[ xs = 3 ]")
        assert is_error(ev("xs[0]", ad))

    def test_undefined_base_propagates(self):
        ad = ClassAd({})
        assert is_undefined(ev("nothing[0]", ad))


class TestCycles:
    def test_self_cycle_is_undefined(self):
        ad = ClassAd({})
        ad.set_expr("x", "x + 1")
        assert is_undefined(ad.evaluate("x"))

    def test_mutual_cycle_is_undefined(self):
        ad = ClassAd({})
        ad.set_expr("a", "b")
        ad.set_expr("b", "a")
        assert is_undefined(ad.evaluate("a"))

    def test_cross_ad_ping_pong_terminates(self):
        a = ClassAd({})
        a.set_expr("Rank", "other.Rank")
        b = ClassAd({})
        b.set_expr("Rank", "other.Rank")
        assert is_undefined(a.evaluate("Rank", other=b))

    def test_diamond_reuse_is_not_a_cycle(self):
        # x referenced twice along different paths must not trip detection.
        ad = ClassAd.parse("[ x = 3; y = x + x ]")
        assert ad.evaluate("y") == 6

    def test_figure1_rank_in_constraint_is_not_cyclic(self):
        # Figure 1's Constraint references its own Rank attribute.
        from repro.paper import figure1_machine, figure2_job

        machine = figure1_machine()
        assert machine.evaluate("Constraint", other=figure2_job()) is True


class TestBudgets:
    def test_step_budget_yields_error(self):
        ad = ClassAd({})
        # A chain a0 -> a1 -> ... evaluated under a tiny budget.
        for i in range(20):
            ad.set_expr(f"a{i}", f"a{i+1} + 1")
        ad["a20"] = 0
        result = ad.evaluate("a0", max_steps=10)
        assert is_error(result)

    def test_depth_budget_yields_error_not_recursion(self):
        deep = "!" * 300 + "true"
        assert is_error(ev(deep))

    def test_generous_budget_succeeds(self):
        ad = ClassAd({})
        for i in range(20):
            ad.set_expr(f"a{i}", f"a{i+1} + 1")
        ad["a20"] = 0
        assert ad.evaluate("a0") == 20


class TestEvaluationTotality:
    def test_unknown_function_is_error(self):
        assert is_error(ev("frobnicate(1, 2)"))

    def test_record_evaluates_to_classad(self):
        value = ev("[ a = 1 ]")
        assert isinstance(value, ClassAd)
        assert value.evaluate("a") == 1

    def test_list_evaluates_members(self):
        assert ev("{1 + 1, 2 * 2}") == [2, 4]
