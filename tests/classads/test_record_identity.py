"""Tests for `is`/`isnt` over compound values (records, lists)."""

from repro.classads import ClassAd, evaluate, parse


def ev(text, self_ad=None, other=None):
    return evaluate(parse(text), self_ad, other=other)


class TestRecordIdentity:
    def test_identical_records(self):
        assert ev("[a = 1; b = 2] is [a = 1; b = 2]") is True

    def test_attribute_order_irrelevant(self):
        assert ev("[a = 1; b = 2] is [b = 2; a = 1]") is True

    def test_name_case_irrelevant(self):
        assert ev("[A = 1] is [a = 1]") is True

    def test_value_difference_detected(self):
        assert ev("[a = 1] is [a = 2]") is False

    def test_extra_attribute_detected(self):
        assert ev("[a = 1] is [a = 1; b = 2]") is False

    def test_expression_bodies_compared_structurally(self):
        # Identity compares *unevaluated* bodies: x+1 vs 1+x differ.
        assert ev("[v = x + 1] is [v = x + 1]") is True
        assert ev("[v = x + 1] is [v = 1 + x]") is False

    def test_record_vs_non_record(self):
        assert ev("[a = 1] is 1") is False
        assert ev("[a = 1] isnt {1}") is True

    def test_nested_records(self):
        assert ev("[r = [x = 1]] is [r = [x = 1]]") is True
        assert ev("[r = [x = 1]] is [r = [x = 2]]") is False


class TestListIdentityEdges:
    def test_nested_lists(self):
        assert ev("{{1}, {2}} is {{1}, {2}}") is True
        assert ev("{{1}} is {{2}}") is False

    def test_length_mismatch(self):
        assert ev("{1, 2} is {1}") is False

    def test_mixed_undefined_members(self):
        assert ev("{undefined} is {undefined}") is True
        assert ev("{undefined} is {error}") is False

    def test_record_inside_list(self):
        assert ev("{[a = 1]} is {[a = 1]}") is True
