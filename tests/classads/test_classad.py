"""Unit tests for the ClassAd container type."""

import pytest

from repro.classads import ClassAd, Literal, is_undefined, parse


class TestConstruction:
    def test_from_dict(self):
        ad = ClassAd({"Type": "Machine", "Memory": 64})
        assert ad.evaluate("Memory") == 64
        assert ad.evaluate("Type") == "Machine"

    def test_from_pairs(self):
        ad = ClassAd([("a", 1), ("b", 2)])
        assert ad.keys() == ["a", "b"]

    def test_python_values_convert(self):
        ad = ClassAd(
            {
                "i": 3,
                "r": 2.5,
                "s": "text",
                "b": True,
                "l": [1, "two", [3]],
                "nested": {"x": 1},
                "nothing": None,
            }
        )
        assert ad.evaluate("i") == 3
        assert ad.evaluate("r") == 2.5
        assert ad.evaluate("s") == "text"
        assert ad.evaluate("b") is True
        assert ad.evaluate("l") == [1, "two", [3]]
        assert ad.eval_expr("nested.x") == 1
        assert is_undefined(ad.evaluate("nothing"))

    def test_expression_values_pass_through(self):
        expr = parse("1 + 2")
        ad = ClassAd({"x": expr})
        assert ad.lookup("x") is expr

    def test_strings_are_literals_not_parsed(self):
        ad = ClassAd({"x": "1 + 2"})
        assert ad.evaluate("x") == "1 + 2"

    def test_set_expr_parses(self):
        ad = ClassAd()
        ad.set_expr("x", "1 + 2")
        assert ad.evaluate("x") == 3

    def test_unconvertible_value_raises(self):
        with pytest.raises(TypeError):
            ClassAd({"x": object()})


class TestMappingProtocol:
    def test_case_insensitive_lookup(self):
        ad = ClassAd({"KeyboardIdle": 1432})
        assert "keyboardidle" in ad
        assert ad["KEYBOARDIDLE"] == Literal(1432)

    def test_original_spelling_preserved(self):
        ad = ClassAd({"KeyboardIdle": 1})
        assert ad.keys() == ["KeyboardIdle"]

    def test_overwrite_keeps_first_spelling_and_position(self):
        ad = ClassAd({"a": 1, "B": 2})
        ad["A"] = 10
        assert ad.keys() == ["a", "B"]
        assert ad.evaluate("a") == 10

    def test_delete(self):
        ad = ClassAd({"a": 1})
        del ad["A"]
        assert "a" not in ad
        with pytest.raises(KeyError):
            del ad["a"]

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            ClassAd({})["missing"]

    def test_lookup_missing_returns_none(self):
        assert ClassAd({}).lookup("missing") is None

    def test_len_and_iter(self):
        ad = ClassAd({"a": 1, "b": 2})
        assert len(ad) == 2
        assert list(ad) == ["a", "b"]

    def test_update(self):
        ad = ClassAd({"a": 1})
        ad.update({"a": 2, "b": 3})
        assert ad.evaluate("a") == 2
        assert ad.evaluate("b") == 3

    def test_copy_is_independent(self):
        ad = ClassAd({"a": 1})
        dup = ad.copy()
        dup["a"] = 2
        assert ad.evaluate("a") == 1
        assert dup.evaluate("a") == 2


class TestEquality:
    def test_order_insensitive(self):
        assert ClassAd({"a": 1, "b": 2}) == ClassAd({"b": 2, "a": 1})

    def test_case_insensitive_names(self):
        assert ClassAd({"A": 1}) == ClassAd({"a": 1})

    def test_different_values_unequal(self):
        assert ClassAd({"a": 1}) != ClassAd({"a": 2})

    def test_extra_attribute_unequal(self):
        assert ClassAd({"a": 1}) != ClassAd({"a": 1, "b": 2})

    def test_not_equal_to_dict(self):
        assert ClassAd({"a": 1}) != {"a": 1}

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ClassAd({}))


class TestEvaluationApi:
    def test_evaluate_missing_is_undefined(self):
        assert is_undefined(ClassAd({}).evaluate("anything"))

    def test_eval_expr_accepts_text_and_expr(self):
        ad = ClassAd({"Memory": 64})
        assert ad.eval_expr("Memory / 2") == 32
        assert ad.eval_expr(parse("Memory / 2")) == 32

    def test_evaluate_with_other(self):
        machine = ClassAd({"Memory": 64})
        job = ClassAd({})
        job.set_expr("ok", "other.Memory >= 32")
        assert job.evaluate("ok", other=machine) is True


class TestConversionsAndParsing:
    def test_parse_round_trip(self):
        ad = ClassAd.parse('[ a = 1; b = "x"; c = {1, 2} ]')
        again = ClassAd.parse(str(ad))
        assert again == ad

    def test_parse_without_brackets(self):
        ad = ClassAd.parse('Type = "Job"; Memory = 31')
        assert ad.evaluate("Memory") == 31

    def test_to_record_and_back(self):
        ad = ClassAd({"a": 1})
        assert ClassAd.from_record(ad.to_record()) == ad

    def test_nesting_an_ad_inside_another(self):
        inner = ClassAd({"mips": 104})
        outer = ClassAd({"cpu": inner})
        assert outer.eval_expr("cpu.mips") == 104

    def test_repr_is_compact(self):
        ad = ClassAd({c: 0 for c in "abcdef"})
        assert "..." in repr(ad)
        assert "6 attrs" in repr(ad)
