"""Unit tests for the classad tokenizer."""

import pytest

from repro.classads.errors import LexerError
from repro.classads.lexer import EOF, IDENT, INT, OP, REAL, STRING, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]  # drop EOF


class TestNumbers:
    def test_integer(self):
        toks = tokenize("42")
        assert toks[0].kind == INT and toks[0].value == 42

    def test_zero(self):
        assert values("0") == [0]

    def test_real_with_fraction(self):
        toks = tokenize("0.042969")
        assert toks[0].kind == REAL
        assert toks[0].value == pytest.approx(0.042969)

    def test_real_scientific_uppercase(self):
        # Figure 2 uses `KFlops/1E3`.
        toks = tokenize("1E3")
        assert toks[0].kind == REAL and toks[0].value == 1000.0

    def test_real_scientific_signed_exponent(self):
        assert values("2.5e-3") == [0.0025]
        assert values("2e+2") == [200.0]

    def test_dot_not_followed_by_digit_is_selection(self):
        # `3.x` must lex as INT, OP(.), IDENT so `ad.Attr` postfix works.
        toks = tokenize("3.x")
        assert [t.kind for t in toks[:-1]] == [INT, OP, IDENT]

    def test_integer_then_exponent_like_ident(self):
        # `2ex` is INT 2 followed by identifier `ex`, not a malformed real.
        toks = tokenize("2ex")
        assert [t.kind for t in toks[:-1]] == [INT, IDENT]
        assert toks[0].value == 2 and toks[1].value == "ex"


class TestStrings:
    def test_simple(self):
        assert values('"hello"') == ["hello"]

    def test_escapes(self):
        assert values(r'"a\nb\t\"q\\"') == ['a\nb\t"q\\']

    def test_empty(self):
        assert values('""') == [""]

    def test_unterminated_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_unterminated_at_newline_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops\n"')

    def test_unknown_escape_raises(self):
        with pytest.raises(LexerError):
            tokenize(r'"\q"')


class TestOperators:
    def test_multi_char_operators(self):
        assert values("&& || <= >= == != =?= =!=") == [
            "&&", "||", "<=", ">=", "==", "!=", "=?=", "=!=",
        ]

    def test_maximal_munch(self):
        # `<=` must not lex as `<` `=`.
        toks = tokenize("a<=b")
        assert toks[1].value == "<="

    def test_single_char_operators(self):
        text = "+ - * / % ( ) [ ] { } , ; = . ? : < > !"
        assert values(text) == text.split()

    def test_unexpected_character(self):
        with pytest.raises(LexerError) as exc:
            tokenize("a @ b")
        assert exc.value.column == 3


class TestCommentsAndTrivia:
    def test_line_comment(self):
        # Figure 1 annotates attributes with // comments.
        assert values("64 // megabytes") == [64]

    def test_line_comment_stops_at_newline(self):
        assert values("1 // c\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 /* anything \n at all */ 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("1 /* never closed")

    def test_whitespace_only(self):
        assert kinds("  \t \n ") == [EOF]

    def test_empty_input(self):
        assert kinds("") == [EOF]


class TestIdentifiers:
    def test_identifier_with_underscore_and_digits(self):
        assert values("Want_Checkpoint2") == ["Want_Checkpoint2"]

    def test_case_preserved(self):
        assert values("KeyboardIdle") == ["KeyboardIdle"]

    def test_leading_underscore(self):
        assert values("_private") == ["_private"]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  bb\n c")
        a, bb, c = toks[0], toks[1], toks[2]
        assert (a.line, a.column) == (1, 1)
        assert (bb.line, bb.column) == (2, 3)
        assert (c.line, c.column) == (3, 2)

    def test_eof_token_always_last(self):
        toks = tokenize("x + y")
        assert toks[-1].kind == EOF
