"""Differential tests for the fingerprinted refresh fast path (PR 8).

The refresh protocol is a pure transport optimisation: with it on or off
(``REPRO_NO_REFRESH=1`` / :func:`set_refresh`), a clean same-seed run
must produce bitwise-identical event streams, job outcomes, and final
collector state.  Under chaos the two modes consume different RNG draws
(a ``ResendRequest`` is an extra message), so there we assert the
outcome-level contract instead: every profile still delivers all jobs
and passes the protocol invariants.

Also covered here: the E1 crash-recovery story — after a central-manager
outage the first ``Refresh`` misses, the collector answers with a
``ResendRequest``, and one full advertising period later the pool
composition is fully restored.
"""

import pytest

from repro import obs
from repro.condor import CondorPool, Job, MachineSpec, PoolConfig
from repro.condor.collector import _job_order_key
from repro.matchmaking.matchmaker import reset_cycle_ids
from repro.obs.invariants import check_events
from repro.protocols import (
    Refresh,
    ResendRequest,
    refresh_enabled,
    reset_message_ids,
    set_refresh,
)
from repro.sim.chaos import PROFILES, chaos_profile


def _build_pool(seed=7, machines=6, chaos=None, horizon=None):
    specs = [
        MachineSpec(name=f"m{i}", mips=100.0 + 50.0 * (i % 3))
        for i in range(machines)
    ]
    cfg = dict(
        seed=seed,
        advertise_interval=60.0,
        negotiation_interval=60.0,
    )
    if chaos is not None:
        cfg["chaos"] = chaos
        cfg["chaos_horizon"] = horizon
    return CondorPool(specs, config=PoolConfig(**cfg))


def _batch(jobs=10):
    return [
        Job(
            job_id=j,
            owner="alice" if j % 2 == 0 else "bob",
            total_work=600.0 + 60.0 * (j % 5),
        )
        for j in range(jobs)
    ]


def _job_outcome(job):
    return (
        job.job_id,
        job.owner,
        job.state.name,
        job.completion_time,
        job.completed_work,
        job.restarts,
        job.evictions,
        job.matches,
        job.claim_rejections,
    )


def _spy_network(pool, captured):
    """Record every message the pool sends (without perturbing delivery)."""
    original = pool.net.send

    def send(message):
        captured.append(message)
        original(message)

    pool.net.send = send


def run_clean(refresh, seed=7):
    """One recorded clean run; returns (events, outcomes, snapshot, sent)."""
    obs.reset()
    reset_message_ids()
    reset_cycle_ids()
    set_refresh(refresh)
    obs.enable(events=True)
    try:
        pool = _build_pool(seed=seed)
        sent = []
        _spy_network(pool, sent)
        pool.submit_all(_batch(), arrival_times=[5.0 * j for j in range(10)])
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        # Two cycle.end fields are not protocol outcomes and legitimately
        # vary: duration_s is wall-clock, and evals_saved counts compiled-
        # cache hits — the fast path keeps per-ad caches warm (that is the
        # point), so it reports *more* savings than the full-ad path.
        drop = {"duration_s", "evals_saved"}
        events = [
            (
                e.t,
                e.kind,
                tuple(sorted((k, v) for k, v in e.fields.items() if k not in drop)),
            )
            for e in obs.event_log.events()
        ]
        outcomes = sorted(_job_outcome(j) for j in pool.jobs())
        snapshot = pool.collector.snapshot()
    finally:
        set_refresh(None)
        obs.disable()
        obs.reset()
    return events, outcomes, snapshot, sent


class TestCleanRunEquivalence:
    def test_refresh_on_equals_refresh_off_bitwise(self):
        ev_on, out_on, snap_on, sent_on = run_clean(True)
        ev_off, out_off, snap_off, sent_off = run_clean(False)

        # The comparison is only meaningful if the fast path actually ran.
        assert any(isinstance(m, Refresh) for m in sent_on)
        assert not any(isinstance(m, Refresh) for m in sent_off)
        assert not any(isinstance(m, ResendRequest) for m in sent_on)

        assert ev_on == ev_off
        assert out_on == out_off
        assert snap_on == snap_off

    def test_same_mode_same_seed_is_deterministic(self):
        ev_a, out_a, snap_a, _ = run_clean(True)
        ev_b, out_b, snap_b, _ = run_clean(True)
        assert ev_a == ev_b
        assert out_a == out_b
        assert snap_a == snap_b

    def test_refresh_mode_sends_fewer_advertising_bytes(self):
        _, _, _, sent_on = run_clean(True)
        _, _, _, sent_off = run_clean(False)
        bytes_on = sum(m.wire_size() for m in sent_on)
        bytes_off = sum(m.wire_size() for m in sent_off)
        assert bytes_on < bytes_off


class TestKillSwitch:
    def test_env_variable_disables_the_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_REFRESH", "1")
        set_refresh(None)  # re-read the environment
        try:
            assert not refresh_enabled()
            pool = _build_pool(machines=2)
            sent = []
            _spy_network(pool, sent)
            pool.run_until(400.0)
            assert not any(isinstance(m, Refresh) for m in sent)
        finally:
            monkeypatch.delenv("REPRO_NO_REFRESH", raising=False)
            set_refresh(None)

    def test_explicit_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_REFRESH", "1")
        set_refresh(True)
        try:
            assert refresh_enabled()
        finally:
            set_refresh(None)


class TestCrashResync:
    def test_resend_request_restores_state_within_one_period(self):
        """After a CM outage, a stale Refresh is answered by ResendRequest
        and the sender's full re-advertisement rebuilds the store within
        one advertising period of recovery (the E1 claim, kept)."""
        set_refresh(True)
        try:
            pool = _build_pool(machines=4)
            sent = []
            _spy_network(pool, sent)
            pool.submit_all(_batch(jobs=4), arrival_times=[5.0, 10.0, 15.0, 20.0])
            pool.crash_central_manager(at=400.0, duration=50.0)
            pool.run_until(399.0)
            # Steady state before the crash: refreshes flowing, store full.
            assert any(isinstance(m, Refresh) for m in sent)
            assert len(pool.collector.machine_ads()) == 4

            # One advertising period (+ delivery slack) after recovery at
            # t=450 every machine must be re-registered.
            pool.run_until(450.0 + 60.0 + 5.0)
            resyncs = [m for m in sent if isinstance(m, ResendRequest)]
            assert resyncs, "collector never asked for a resend"
            assert len(pool.collector.machine_ads()) == 4

            # And the pool still drains normally afterwards.
            pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
            assert all(job.done for job in pool.jobs())
        finally:
            set_refresh(None)


class TestChaosBothModes:
    """Outcome-level equivalence: every chaos profile completes and keeps
    the invariants with the fast path on *and* off (bitwise equality is
    out of reach under chaos — the resync handshake consumes extra RNG
    draws — so the contract is the recorded-invariant one)."""

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("refresh", [True, False])
    def test_profile_completes_and_invariants_hold(self, profile, refresh):
        horizon = 3600.0
        plan = chaos_profile(profile, horizon=horizon)
        obs.reset()
        reset_message_ids()
        reset_cycle_ids()
        set_refresh(refresh)
        obs.enable(events=True)
        try:
            pool = _build_pool(
                seed=plan.seed, machines=5, chaos=plan, horizon=horizon
            )
            batch = _batch(jobs=8)
            pool.submit_all(
                batch, arrival_times=[5.0 * j for j in range(len(batch))]
            )
            pool.run_until_quiescent(check_interval=60.0, max_time=8.0 * horizon)
            events = list(obs.event_log.events())
        finally:
            set_refresh(None)
            obs.disable()
            obs.reset()
        assert all(job.done for job in pool.jobs())
        report = check_events(events, require_complete=True)
        assert report.ok, "\n".join(str(v) for v in report.violations)


class TestIncrementalViewsMatchNaive:
    """Satellites 1+2: the collector's incremental composition counts and
    the cached owner-grouped job view must always agree with a from-
    scratch recomputation over the store."""

    def _run_partial(self, until=700.0):
        set_refresh(True)
        try:
            pool = _build_pool(machines=5)
            pool.submit_all(_batch(jobs=8), arrival_times=[5.0 * j for j in range(8)])
            pool.run_until(until)
        finally:
            set_refresh(None)
        return pool

    @staticmethod
    def _naive_composition(collector):
        machines = jobs = 0
        states = {}
        for ad in collector.store.ads():
            kind, state = collector._classify(ad)
            if kind == "machine":
                machines += 1
                states[state] = states.get(state, 0) + 1
            elif kind == "job":
                jobs += 1
        return machines, states, jobs

    @staticmethod
    def _naive_grouped(collector):
        grouped = {}
        for ad in collector.job_ads():
            owner = ad.evaluate("Owner")
            grouped.setdefault(owner, []).append((_job_order_key(ad), ad))
        return {
            owner: [ad for _, ad in sorted(pairs, key=lambda p: p[0])]
            for owner, pairs in grouped.items()
        }

    def test_composition_counts_match_store_scan(self):
        collector = self._run_partial().collector
        machines, states, jobs = self._naive_composition(collector)
        assert collector._n_machines == machines
        assert collector._n_jobs == jobs
        live = {k: v for k, v in collector._state_counts.items() if v}
        assert live == states

    def test_job_grouping_matches_store_scan(self):
        collector = self._run_partial().collector
        grouped = collector.job_ads_by_owner()
        naive = self._naive_grouped(collector)
        assert set(grouped) == set(naive)
        for owner in naive:
            assert len(grouped[owner]) == len(naive[owner])
            for got, want in zip(grouped[owner], naive[owner]):
                assert got is want

    def test_counts_survive_expiry_and_crash(self):
        pool = self._run_partial()
        pool.collector.crash()
        assert pool.collector._n_machines == 0
        assert pool.collector._n_jobs == 0
        assert self._naive_composition(pool.collector) == (0, {}, 0)
