"""Unit tests for the status tools (one-way matching views, Section 4)."""

import pytest

from repro.classads import ClassAd
from repro.condor.status import browse, format_userprio, machine_status, queue_status
from repro.matchmaking import Accountant


def machine(name, arch="INTEL", state="Unclaimed", memory=64):
    return ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": arch,
            "OpSys": "SOLARIS251",
            "State": state,
            "Activity": "Idle",
            "Memory": memory,
            "LoadAvg": 0.05,
            "KeyboardIdle": 1432,
        }
    )


def job(job_id, owner, cmd="run_sim"):
    return ClassAd(
        {
            "Type": "Job",
            "JobId": job_id,
            "Owner": owner,
            "Cmd": cmd,
            "Memory": 31,
            "ReqArch": "INTEL",
            "RemainingWork": 600.0,
        }
    )


class TestMachineStatus:
    def test_renders_rows_and_summary(self):
        ads = [machine("m0"), machine("m1", state="Claimed"), job(1, "raman")]
        text = machine_status(ads)
        assert "m0" in text and "m1" in text
        assert "raman" not in text  # jobs filtered out
        assert "Total 2 machines" in text
        assert "1 Claimed" in text and "1 Unclaimed" in text

    def test_constraint_filters(self):
        ads = [machine("m0", memory=64), machine("m1", memory=16)]
        text = machine_status(ads, constraint="Memory >= 32")
        assert "m0" in text and "m1" not in text

    def test_empty_pool(self):
        text = machine_status([])
        assert "no machines" in text
        assert "Total 0 machines" in text

    def test_missing_attribute_rendered_as_placeholder(self):
        bare = ClassAd({"Type": "Machine", "Name": "mystery"})
        text = machine_status([bare])
        assert "[?]" in text


class TestQueueStatus:
    def test_lists_jobs(self):
        ads = [job(1, "raman"), job(2, "miron"), machine("m0")]
        text = queue_status(ads)
        assert "raman" in text and "miron" in text
        assert "m0" not in text

    def test_owner_filter(self):
        ads = [job(1, "raman"), job(2, "miron")]
        text = queue_status(ads, owner="raman")
        assert "raman" in text and "miron" not in text

    def test_empty(self):
        assert "no idle jobs" in queue_status([machine("m0")])


class TestBrowse:
    def test_generic_constraint(self):
        ads = [machine("m0"), job(1, "raman")]
        found = browse(ads, 'Type == "Job"')
        assert len(found) == 1
        assert found[0].evaluate("Owner") == "raman"


class TestUserprio:
    def test_renders_accountant(self):
        acc = Accountant(half_life=100)
        acc.resource_claimed("raman")
        acc.record("miron")
        acc.advance_to(300)
        text = format_userprio(acc)
        assert "raman" in text and "miron" in text
        assert "EffPrio" in text

    def test_live_pool_views(self):
        """Smoke: the views work straight off a running pool's collector."""
        from repro.condor import CondorPool, Job, MachineSpec, PoolConfig

        pool = CondorPool(
            [MachineSpec(name="m0"), MachineSpec(name="m1")],
            PoolConfig(seed=1, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="raman", total_work=5_000.0))
        pool.submit(Job(owner="raman", total_work=5_000.0))
        pool.submit(Job(owner="raman", total_work=5_000.0))
        pool.run_until(120.0)
        ads = pool.collector.store.ads()
        status = machine_status(ads)
        assert "Total 2 machines" in status
        queue = queue_status(ads)  # the job still idle is advertised
        assert "raman" in queue


class TestJobHistory:
    def test_history_lists_terminal_jobs(self):
        from repro.condor import CondorPool, Job, MachineSpec, PoolConfig
        from repro.condor.status import job_history

        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=1, advertise_interval=60.0, negotiation_interval=60.0),
        )
        done_job = Job(owner="raman", total_work=100.0)
        removed_job = Job(owner="raman", total_work=100.0)
        running_job = Job(owner="raman", total_work=50_000.0)
        for job in (done_job, removed_job, running_job):
            pool.submit(job)
        pool.schedds["raman"].remove(removed_job.job_id)
        pool.run_until(600.0)
        text = job_history(pool.jobs())
        listed_ids = {line.split()[0] for line in text.splitlines()[1:] if line.strip()}
        assert str(done_job.job_id) in listed_ids
        assert str(removed_job.job_id) in listed_ids
        assert str(running_job.job_id) not in listed_ids
        assert "Completed" in text and "Removed" in text

    def test_history_owner_filter_and_empty(self):
        from repro.condor.status import job_history

        assert "no finished jobs" in job_history([])
