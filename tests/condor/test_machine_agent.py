"""Unit tests for the resource-owner agent (S14)."""

import pytest

from repro.classads import ClassAd, is_true
from repro.condor import Job, MachineSpec, MachineState
from repro.condor.machine import MachineAgent, OwnerModel
from repro.protocols import ClaimRequest, ticket_from_ad
from repro.sim import Network, RngStream, Simulator, Trace


class ScriptedOwner(OwnerModel):
    """Owner who arrives/leaves at scripted offsets (for deterministic tests)."""

    def __init__(self, first_arrival, active_for, idle_for=3600.0):
        self.first_arrival = first_arrival
        self.active_for = active_for
        self.idle_for = idle_for

    def first_event(self, rng):
        return False, self.first_arrival

    def active_duration(self, rng):
        return self.active_for

    def idle_duration(self, rng):
        return self.idle_for


def make_agent(spec=None, owner_model=None, advertise_interval=60.0):
    sim = Simulator()
    net = Network(sim, rng=RngStream(1), latency=0.01)
    trace = Trace()
    inbox = []
    net.register("collector@cm", inbox.append)
    net.register("schedd@alice", inbox.append)
    agent = MachineAgent(
        sim,
        net,
        spec or MachineSpec(name="m0", mips=100.0),
        collector_address="collector@cm",
        trace=trace,
        rng=RngStream(2),
        owner_model=owner_model,
        advertise_interval=advertise_interval,
    )
    agent.start()
    return sim, net, agent, inbox


def claim_request_for(agent, job, sim, ticket=None):
    ad = job.to_classad("schedd@alice", sim.now)
    return ClaimRequest(
        sender="schedd@alice",
        recipient=agent.address,
        customer_ad=ad,
        ticket=ticket if ticket is not None else agent.authority.current,
        match_id=99,
    )


class TestAdvertising:
    def test_periodic_ads_sent(self):
        sim, net, agent, inbox = make_agent(advertise_interval=60.0)
        sim.run_until(200.0)
        from repro.protocols import Advertisement, Refresh

        # With the refresh fast path on, the first ad is full and the
        # unchanged periodic re-ads ride the compact Refresh.
        ads = [m for m in inbox if isinstance(m, (Advertisement, Refresh))]
        assert len(ads) >= 3
        assert isinstance(ads[0], Advertisement)
        assert all(m.name == "machine.m0" for m in ads)

    def test_periodic_ads_all_full_with_refresh_disabled(self):
        from repro.protocols import Advertisement, set_refresh

        set_refresh(False)
        try:
            sim, net, agent, inbox = make_agent(advertise_interval=60.0)
            sim.run_until(200.0)
            ads = [m for m in inbox if isinstance(m, Advertisement)]
            assert len(ads) >= 3
            assert all(m.fingerprint is None for m in ads)
        finally:
            set_refresh(None)

    def test_ad_contents(self):
        sim, net, agent, inbox = make_agent()
        ad = agent.build_ad()
        assert ad.evaluate("Type") == "Machine"
        assert ad.evaluate("Name") == "m0"
        assert ad.evaluate("State") == "Unclaimed"
        assert ad.evaluate("ContactAddress") == agent.address
        assert ticket_from_ad(ad) is not None

    def test_extra_attrs_included(self):
        spec = MachineSpec(name="m0", extra_attrs={"ResearchGroup": ["raman"]})
        sim, net, agent, inbox = make_agent(spec=spec)
        assert agent.build_ad().evaluate("ResearchGroup") == ["raman"]

    def test_daytime_wraps(self):
        sim, net, agent, inbox = make_agent()
        sim.run_until(86_400.0 + 100.0)
        assert agent.day_time == pytest.approx(100.0)


class TestOwnerDynamics:
    def test_owner_arrival_enters_owner_state(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(100.0, 50.0))
        sim.run_until(120.0)
        assert agent.state is MachineState.OWNER
        assert agent.owner_active

    def test_owner_departure_returns_to_unclaimed(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(100.0, 50.0))
        sim.run_until(200.0)
        assert agent.state is MachineState.UNCLAIMED

    def test_keyboard_idle_resets_on_activity(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(100.0, 50.0))
        sim.run_until(99.0)
        assert agent.keyboard_idle == pytest.approx(99.0)
        sim.run_until(120.0)
        assert agent.keyboard_idle == 0.0
        sim.run_until(160.0)  # owner left at t=150
        assert agent.keyboard_idle == pytest.approx(10.0)

    def test_owner_state_ad_is_unmatchable(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(100.0, 50.0))
        sim.run_until(120.0)
        ad = agent.build_ad()
        job = Job(owner="alice", total_work=10).to_classad("schedd@alice", sim.now)
        assert not is_true(ad.evaluate("Constraint", other=job))

    def test_ticket_revoked_while_owner_present(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(100.0, 50.0))
        sim.run_until(120.0)
        assert agent.authority.current is None

    def test_load_avg_follows_owner(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(100.0, 50.0))
        assert agent.load_avg < 0.3
        sim.run_until(120.0)
        assert agent.load_avg > 0.3


class TestClaiming:
    def test_valid_claim_accepted_and_job_runs(self):
        sim, net, agent, inbox = make_agent()
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=100.0)  # 100s at 100 mips
        net.send(claim_request_for(agent, job, sim))
        sim.run_until(2.0)
        assert agent.state is MachineState.CLAIMED
        assert agent.claim is not None
        sim.run_until(200.0)
        assert agent.jobs_completed == 1
        assert agent.state is MachineState.UNCLAIMED
        from repro.condor.messages import JobCompleted

        # The raw inbox never acks, so the RA retries the notice;
        # every copy is identical (at-least-once delivery).
        done = [m for m in inbox if isinstance(m, JobCompleted)]
        assert len(done) >= 1
        assert len({(m.match_id, m.job_id) for m in done}) == 1
        assert done[0].work_done == pytest.approx(100.0, abs=1.0)

    def test_fast_machine_finishes_sooner(self):
        sim, net, agent, inbox = make_agent(spec=MachineSpec(name="m0", mips=200.0))
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=100.0)
        net.send(claim_request_for(agent, job, sim))
        sim.run_until(60.0)  # 100 ref-seconds at 200 mips = 50s wall
        assert agent.jobs_completed == 1

    def test_bad_ticket_rejected(self):
        from repro.protocols import Ticket

        sim, net, agent, inbox = make_agent()
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=10)
        bogus = Ticket("m0", 1, "forged")
        net.send(claim_request_for(agent, job, sim, ticket=bogus))
        sim.run_until(2.0)
        assert agent.state is MachineState.UNCLAIMED
        assert agent.claims_rejected == 1
        from repro.protocols import ClaimResponse

        responses = [m for m in inbox if isinstance(m, ClaimResponse)]
        assert responses and not responses[0].accepted
        assert responses[0].reason == "bad-ticket"

    def test_claim_rejected_when_owner_present(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(10.0, 1000.0))
        sim.run_until(5.0)
        ticket = agent.authority.current  # valid now, revoked at t=10
        sim.run_until(20.0)
        job = Job(owner="alice", total_work=10)
        net.send(claim_request_for(agent, job, sim, ticket=ticket))
        sim.run_until(21.0)
        assert agent.claims_rejected == 1
        assert agent.state is MachineState.OWNER

    def test_owner_return_evicts_job(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=500.0, want_checkpoint=True)
        net.send(claim_request_for(agent, job, sim))
        sim.run_until(60.0)
        assert agent.state is MachineState.OWNER
        assert agent.evictions_owner == 1
        from repro.condor.messages import JobEvicted

        evictions = [m for m in inbox if isinstance(m, JobEvicted)]
        assert len(evictions) >= 1
        assert evictions[0].checkpointed
        # ~49s of work at reference speed before the owner returned.
        assert evictions[0].work_done == pytest.approx(49.0, abs=1.5)

    def test_eviction_without_checkpoint_flagged(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=500.0, want_checkpoint=False)
        net.send(claim_request_for(agent, job, sim))
        sim.run_until(60.0)
        from repro.condor.messages import JobEvicted

        evictions = [m for m in inbox if isinstance(m, JobEvicted)]
        assert evictions and not evictions[0].checkpointed

    def test_second_claim_with_equal_rank_rejected(self):
        sim, net, agent, inbox = make_agent()
        sim.run_until(1.0)
        net.send(claim_request_for(agent, Job(owner="alice", total_work=500.0), sim))
        sim.run_until(2.0)
        ticket = agent.authority.current
        net.send(claim_request_for(agent, Job(owner="bob", total_work=10.0), sim, ticket=ticket))
        sim.run_until(3.0)
        assert agent.claims_rejected == 1
        from repro.protocols import ClaimResponse

        rejected = [m for m in inbox if isinstance(m, ClaimResponse) and not m.accepted]
        assert rejected[0].reason == "already-claimed"


class TestRankPreemption:
    def preferential_spec(self):
        return MachineSpec(
            name="m0",
            rank='member(other.Owner, { "raman", "miron" }) * 10',
        )

    def test_higher_rank_customer_preempts(self):
        sim, net, agent, inbox = make_agent(spec=self.preferential_spec())
        sim.run_until(1.0)
        net.send(claim_request_for(agent, Job(owner="stranger", total_work=500.0), sim))
        sim.run_until(2.0)
        assert agent.claim.rank == 0.0
        ticket = agent.authority.current
        net.send(
            claim_request_for(agent, Job(owner="raman", total_work=100.0), sim, ticket=ticket)
        )
        sim.run_until(3.0)
        assert agent.evictions_preempted == 1
        assert agent.claim is not None
        assert agent.claim.job_ad.evaluate("Owner") == "raman"
        assert agent.claim.rank == 10.0

    def test_equal_rank_does_not_preempt(self):
        sim, net, agent, inbox = make_agent(spec=self.preferential_spec())
        sim.run_until(1.0)
        net.send(claim_request_for(agent, Job(owner="raman", total_work=500.0), sim))
        sim.run_until(2.0)
        ticket = agent.authority.current
        net.send(
            claim_request_for(agent, Job(owner="miron", total_work=10.0), sim, ticket=ticket)
        )
        sim.run_until(3.0)
        assert agent.evictions_preempted == 0
        assert agent.claim.job_ad.evaluate("Owner") == "raman"

    def test_claimed_ad_advertises_current_rank(self):
        sim, net, agent, inbox = make_agent(spec=self.preferential_spec())
        sim.run_until(1.0)
        net.send(claim_request_for(agent, Job(owner="raman", total_work=500.0), sim))
        sim.run_until(2.0)
        ad = agent.build_ad()
        assert ad.evaluate("State") == "Claimed"
        assert ad.evaluate("CurrentRank") == 10.0
        assert ad.evaluate("RemoteOwner") == "raman"


class TestVacateGrace:
    def start_claim(self, agent, net, sim, memory=64, want_checkpoint=True):
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=500.0, memory=memory,
                  want_checkpoint=want_checkpoint)
        net.send(claim_request_for(agent, job, sim))
        sim.run_until(2.0)
        assert agent.claim is not None

    def evictions(self, inbox):
        from repro.condor.messages import JobEvicted

        return [m for m in inbox if isinstance(m, JobEvicted)]

    def test_ample_grace_checkpoints(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        agent.vacate_grace = 60.0  # 64 MB at 10 MB/s = 6.4s << 60s
        self.start_claim(agent, net, sim, memory=64)
        sim.run_until(60.0)
        assert self.evictions(inbox)[0].checkpointed

    def test_insufficient_grace_loses_checkpoint(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        agent.vacate_grace = 5.0  # 64 MB needs 6.4s > 5s grace
        self.start_claim(agent, net, sim, memory=64)
        sim.run_until(60.0)
        assert not self.evictions(inbox)[0].checkpointed

    def test_small_jobs_still_fit_tight_grace(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        agent.vacate_grace = 5.0
        self.start_claim(agent, net, sim, memory=32)  # 3.2s <= 5s
        sim.run_until(60.0)
        assert self.evictions(inbox)[0].checkpointed

    def test_default_grace_is_unlimited(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        self.start_claim(agent, net, sim, memory=64)  # any size checkpoints
        sim.run_until(60.0)
        assert self.evictions(inbox)[0].checkpointed

    def test_non_checkpointing_job_unaffected(self):
        sim, net, agent, inbox = make_agent(owner_model=ScriptedOwner(50.0, 100.0))
        agent.vacate_grace = 1e9
        self.start_claim(agent, net, sim, want_checkpoint=False)
        sim.run_until(60.0)
        assert not self.evictions(inbox)[0].checkpointed
