"""Unit tests for the customer agent (S15)."""

import pytest

from repro.condor import Job, JobState
from repro.condor.messages import JobCompleted, JobEvicted
from repro.condor.schedd import CustomerAgent
from repro.protocols import (
    Advertisement,
    ClaimRequest,
    ClaimResponse,
    MatchNotification,
    Withdrawal,
)
from repro.sim import Network, PoolMetrics, RngStream, Simulator, Trace


def make_schedd(claim_timeout=30.0):
    sim = Simulator()
    net = Network(sim, rng=RngStream(1), latency=0.01)
    collector_inbox, machine_inbox = [], []
    net.register("collector@cm", collector_inbox.append)
    net.register("startd@m0", machine_inbox.append)
    metrics = PoolMetrics()
    ca = CustomerAgent(
        sim,
        net,
        "alice",
        collector_address="collector@cm",
        trace=Trace(),
        metrics=metrics,
        advertise_interval=60.0,
        claim_timeout=claim_timeout,
    )
    ca.start()
    return sim, net, ca, collector_inbox, machine_inbox


def notify(ca, job, sim, match_id=5):
    """A match notification as the negotiator would send it."""
    from repro.classads import ClassAd

    machine_ad = ClassAd(
        {"Type": "Machine", "Name": "m0", "ContactAddress": "startd@m0", "Memory": 64}
    )
    return MatchNotification(
        sender="negotiator@cm",
        recipient=ca.address,
        peer_address="startd@m0",
        peer_ad=machine_ad,
        my_ad=job.to_classad(ca.address, sim.now),
        ticket=None,
        match_id=match_id,
    )


class TestQueueAndAdvertising:
    def test_submit_advertises_immediately(self):
        sim, net, ca, collector_inbox, _ = make_schedd()
        sim.run_until(5.0)  # past the t=0 periodic firing
        collector_inbox.clear()
        ca.submit(Job(owner="alice", total_work=100))
        sim.run_until(6.0)  # well before the next periodic firing at t=60
        ads = [m for m in collector_inbox if isinstance(m, Advertisement)]
        assert len(ads) == 1
        assert ads[0].ad.evaluate("Owner") == "alice"

    def test_periodic_refresh_of_idle_jobs(self):
        from repro.protocols import Refresh, set_refresh

        set_refresh(True)
        try:
            sim, net, ca, collector_inbox, _ = make_schedd()
            ca.submit(Job(owner="alice", total_work=100))
            sim.run_until(130.0)
            # The first ad is full; unchanged periodic re-ads are compact
            # Refreshes carrying the same advertising name.
            ads = [
                m
                for m in collector_inbox
                if isinstance(m, (Advertisement, Refresh))
            ]
            assert len(ads) >= 3  # immediate + 2 periodic
            assert isinstance(ads[0], Advertisement)
            assert any(isinstance(m, Refresh) for m in ads)
            assert len({m.name for m in ads}) == 1
        finally:
            set_refresh(None)

    def test_metrics_count_submissions(self):
        sim, net, ca, _, _ = make_schedd()
        for _ in range(3):
            ca.submit(Job(owner="alice", total_work=1))
        assert ca.metrics.jobs_submitted == 3
        assert ca.unfinished() == 3


class TestMatchHandling:
    def test_match_triggers_claim_request(self):
        sim, net, ca, _, machine_inbox = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(1.0)
        claims = [m for m in machine_inbox if isinstance(m, ClaimRequest)]
        assert len(claims) == 1
        assert claims[0].match_id == 5
        assert ca.metrics.claims_attempted == 1

    def test_stale_match_for_unknown_job_ignored(self):
        sim, net, ca, _, machine_inbox = make_schedd()
        ghost = Job(owner="alice", total_work=100)  # never submitted
        net.send(notify(ca, ghost, sim))
        sim.run_until(1.0)
        assert not [m for m in machine_inbox if isinstance(m, ClaimRequest)]

    def test_duplicate_match_while_claim_pending_ignored(self):
        sim, net, ca, _, machine_inbox = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim, match_id=5))
        net.send(notify(ca, job, sim, match_id=6))
        sim.run_until(1.0)
        claims = [m for m in machine_inbox if isinstance(m, ClaimRequest)]
        assert len(claims) == 1

    def test_claim_accept_marks_running_and_withdraws(self):
        sim, net, ca, collector_inbox, _ = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(1.0)
        net.send(
            ClaimResponse(
                sender="startd@m0", recipient=ca.address, match_id=5, accepted=True
            )
        )
        sim.run_until(2.0)
        assert job.state is JobState.RUNNING
        assert job.running_on == "m0"
        assert job.first_start_time is not None
        assert [m for m in collector_inbox if isinstance(m, Withdrawal)]

    def test_claim_rejection_returns_job_to_idle(self):
        sim, net, ca, _, _ = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(1.0)
        net.send(
            ClaimResponse(
                sender="startd@m0",
                recipient=ca.address,
                match_id=5,
                accepted=False,
                reason="constraint-violated",
            )
        )
        sim.run_until(2.0)
        assert job.state is JobState.IDLE
        assert job.claim_rejections == 1
        assert ca.metrics.claim_rejections_by_reason["constraint-violated"] == 1
        assert job in ca.idle_jobs()

    def test_claim_timeout_recovers_job(self):
        # The ClaimRequest vanishes (machine down): after the timeout the
        # job must be matchable again.
        sim, net, ca, _, _ = make_schedd(claim_timeout=30.0)
        net.set_down("startd@m0")
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(10.0)
        assert job not in ca.idle_jobs()  # claim pending
        sim.run_until(40.0)
        assert job in ca.idle_jobs()
        assert ca.metrics.claim_rejections_by_reason["timeout"] == 1

    def test_late_response_after_timeout_ignored(self):
        sim, net, ca, _, _ = make_schedd(claim_timeout=5.0)
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(10.0)  # timed out
        net.send(
            ClaimResponse(
                sender="startd@m0", recipient=ca.address, match_id=5, accepted=True
            )
        )
        sim.run_until(11.0)
        assert job.state is JobState.IDLE  # not resurrected into RUNNING


class TestCompletionAndEviction:
    def start_running(self, sim, net, ca):
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(1.0)
        net.send(
            ClaimResponse(sender="startd@m0", recipient=ca.address, match_id=5, accepted=True)
        )
        sim.run_until(2.0)
        assert job.state is JobState.RUNNING
        return job

    def test_completion(self):
        sim, net, ca, _, _ = make_schedd()
        job = self.start_running(sim, net, ca)
        net.send(
            JobCompleted(
                sender="startd@m0",
                recipient=ca.address,
                match_id=5,
                job_id=job.job_id,
                work_done=100.0,
            )
        )
        sim.run_until(3.0)
        assert job.done
        assert ca.metrics.jobs_completed == 1
        assert ca.metrics.goodput == pytest.approx(100.0)
        assert ca.unfinished() == 0

    def test_checkpointed_eviction_keeps_progress(self):
        sim, net, ca, collector_inbox, _ = make_schedd()
        job = self.start_running(sim, net, ca)
        net.send(
            JobEvicted(
                sender="startd@m0",
                recipient=ca.address,
                match_id=5,
                job_id=job.job_id,
                reason="owner-returned",
                checkpointed=True,
                work_done=40.0,
            )
        )
        sim.run_until(3.0)
        assert job.state is JobState.IDLE
        assert job.completed_work == pytest.approx(40.0)
        assert ca.metrics.goodput == pytest.approx(40.0)
        assert ca.metrics.badput == 0.0
        # re-advertised immediately with reduced remaining work
        from repro.protocols import Advertisement

        last_ad = [m for m in collector_inbox if isinstance(m, Advertisement)][-1]
        assert last_ad.ad.evaluate("RemainingWork") == pytest.approx(60.0)

    def test_uncheckpointed_eviction_is_badput(self):
        sim, net, ca, _, _ = make_schedd()
        job = self.start_running(sim, net, ca)
        net.send(
            JobEvicted(
                sender="startd@m0",
                recipient=ca.address,
                match_id=5,
                job_id=job.job_id,
                reason="owner-returned",
                checkpointed=False,
                work_done=40.0,
            )
        )
        sim.run_until(3.0)
        assert job.completed_work == 0.0
        assert job.restarts == 1
        assert ca.metrics.badput == pytest.approx(40.0)

    def test_duplicate_completion_ignored(self):
        sim, net, ca, _, _ = make_schedd()
        job = self.start_running(sim, net, ca)
        for _ in range(2):
            net.send(
                JobCompleted(
                    sender="startd@m0",
                    recipient=ca.address,
                    match_id=5,
                    job_id=job.job_id,
                    work_done=100.0,
                )
            )
        sim.run_until(3.0)
        assert ca.metrics.jobs_completed == 1


class TestJobRemoval:
    def test_remove_idle_job_withdraws_ad(self):
        sim, net, ca, collector_inbox, _ = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        assert ca.remove(job.job_id)
        sim.run_until(1.0)
        assert job.state is JobState.REMOVED
        assert ca.unfinished() == 0
        assert [m for m in collector_inbox if isinstance(m, Withdrawal)]

    def test_remove_running_job_releases_claim(self):
        sim, net, ca, _, machine_inbox = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.send(notify(ca, job, sim))
        sim.run_until(1.0)
        net.send(
            ClaimResponse(sender="startd@m0", recipient=ca.address, match_id=5, accepted=True)
        )
        sim.run_until(2.0)
        assert ca.remove(job.job_id)
        sim.run_until(3.0)
        from repro.protocols import ReleaseNotice

        releases = [m for m in machine_inbox if isinstance(m, ReleaseNotice)]
        assert releases and releases[0].match_id == 5
        assert job.state is JobState.REMOVED

    def test_remove_unknown_or_done_job(self):
        sim, net, ca, _, _ = make_schedd()
        assert not ca.remove(99999)
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        job.state = JobState.COMPLETED
        assert not ca.remove(job.job_id)

    def test_removed_job_never_rematched(self):
        sim, net, ca, _, machine_inbox = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        ca.remove(job.job_id)
        net.send(notify(ca, job, sim))  # stale match arrives afterwards
        sim.run_until(1.0)
        assert not [m for m in machine_inbox if isinstance(m, ClaimRequest)]

    def test_remove_is_idempotent(self):
        sim, net, ca, _, _ = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        assert ca.remove(job.job_id)
        assert not ca.remove(job.job_id)


class TestRecoveryUnderLoss:
    """The hardening satellites: claim timeout and eviction handling when
    the network eats messages."""

    def test_claim_request_lost_to_down_machine_times_out(self):
        sim, net, ca, collector_inbox, machine_inbox = make_schedd(claim_timeout=30.0)
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.set_down("startd@m0")  # every request (and retry) is eaten
        net.send(notify(ca, job, sim))
        sim.run_until(1.0)
        assert job.job_id in ca._pending_jobs
        dropped_before = net.stats.dropped_down
        sim.run_until(60.0)  # past the claim timeout
        assert net.stats.dropped_down >= dropped_before >= 1
        assert job.state is JobState.IDLE
        assert job.job_id not in ca._pending_jobs
        assert ca.metrics.claim_rejections_by_reason.get("timeout") == 1

    def test_job_rematchable_after_timeout(self):
        sim, net, ca, collector_inbox, machine_inbox = make_schedd(claim_timeout=30.0)
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        net.set_down("startd@m0")
        net.send(notify(ca, job, sim, match_id=5))
        sim.run_until(60.0)
        net.set_down("startd@m0", down=False)
        machine_inbox.clear()
        net.send(notify(ca, job, sim, match_id=6))
        sim.run_until(61.0)
        requests = [m for m in machine_inbox if isinstance(m, ClaimRequest)]
        assert len(requests) == 1
        assert requests[0].match_id == 6

    def run_to_running(self, ca, net, sim, job, match_id=5):
        net.send(notify(ca, job, sim, match_id=match_id))
        sim.run_until(sim.now + 0.5)
        net.send(
            ClaimResponse(
                sender="startd@m0",
                recipient=ca.address,
                match_id=match_id,
                accepted=True,
                lease_duration=120.0,
            )
        )
        sim.run_until(sim.now + 0.5)
        assert job.state is JobState.RUNNING

    def test_eviction_recovers_job_even_with_lease_tracking(self):
        sim, net, ca, collector_inbox, machine_inbox = make_schedd()
        job = Job(owner="alice", total_work=100)
        ca.submit(job)
        self.run_to_running(ca, net, sim, job)
        net.send(
            JobEvicted(
                sender="startd@m0",
                recipient=ca.address,
                match_id=5,
                job_id=job.job_id,
                reason="owner-returned",
                checkpointed=False,
                work_done=10.0,
            )
        )
        sim.run_until(sim.now + 1.0)
        assert job.state is JobState.IDLE
        assert job.restarts == 1
        # The lease bookkeeping for the dead claim is gone: keep-alive
        # sweeps must not resurrect or re-lose it.
        sim.run_until(sim.now + 600.0)
        assert job.state is JobState.IDLE

    def test_lease_silence_recovers_job(self):
        from repro.protocols import set_retries

        set_retries(True)
        try:
            sim, net, ca, collector_inbox, machine_inbox = make_schedd()
            job = Job(owner="alice", total_work=100)
            ca.submit(job)
            self.run_to_running(ca, net, sim, job)
            net.set_down("startd@m0")  # machine dies silently; acks stop
            sim.run_until(sim.now + 400.0)  # > lease_duration of 120
            assert job.state is JobState.IDLE
            assert job.restarts == 1
        finally:
            set_retries(None)

    def test_lease_nack_recovers_job_immediately(self):
        from repro.condor.messages import LeaseAck
        from repro.protocols import set_retries

        set_retries(True)
        try:
            sim, net, ca, collector_inbox, machine_inbox = make_schedd()
            job = Job(owner="alice", total_work=100)
            ca.submit(job)
            self.run_to_running(ca, net, sim, job)
            net.send(
                LeaseAck(
                    sender="startd@m0", recipient=ca.address, match_id=5, ok=False
                )
            )
            sim.run_until(sim.now + 1.0)
            assert job.state is JobState.IDLE
        finally:
            set_retries(None)
