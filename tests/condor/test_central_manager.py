"""Unit tests for the collector and negotiator (S16)."""

import pytest

from repro.classads import ClassAd
from repro.condor import Collector, Job, MachineSpec, Negotiator
from repro.condor.machine import MachineAgent
from repro.matchmaking import Accountant
from repro.protocols import Advertisement, MatchNotification, Withdrawal
from repro.sim import Network, RngStream, Simulator, Trace


def machine_ad(name, memory=64, state="Unclaimed"):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": "INTEL",
            "OpSys": "SOLARIS251",
            "Memory": memory,
            "State": state,
            "ContactAddress": f"startd@{name}",
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


def job_ad(owner, job_id, memory=32, qdate=0):
    ad = ClassAd(
        {
            "Type": "Job",
            "JobId": job_id,
            "Owner": owner,
            "Memory": memory,
            "QDate": qdate,
            "ContactAddress": f"schedd@{owner}",
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Machine" && other.Memory >= self.Memory')
    return ad


def advertise(net, name, ad, lifetime=900.0, sequence=1):
    net.send(
        Advertisement(
            sender="x",
            recipient="collector@cm",
            name=name,
            ad=ad,
            lifetime=lifetime,
            sequence=sequence,
        )
    )


class TestCollector:
    def setup_method(self):
        self.sim = Simulator()
        self.net = Network(self.sim, rng=RngStream(1), latency=0.01)
        self.collector = Collector(self.sim, self.net, trace=Trace())

    def test_admits_conforming_ads(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        self.sim.run_until(1.0)
        assert self.collector.ads_admitted == 1
        assert len(self.collector.machine_ads()) == 1

    def test_rejects_nonconforming_ads(self):
        advertise(self.net, "bad", ClassAd({"Memory": 4}))
        self.sim.run_until(1.0)
        assert self.collector.ads_rejected == 1
        assert len(self.collector.store) == 0

    def test_withdrawal(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        self.sim.run_until(1.0)
        self.net.send(Withdrawal(sender="x", recipient="collector@cm", name="machine.m0"))
        self.sim.run_until(2.0)
        assert len(self.collector.store) == 0

    def test_expiry_reaps_unrefreshed_ads(self):
        advertise(self.net, "machine.m0", machine_ad("m0"), lifetime=100.0)
        self.sim.run_until(1.0)
        assert len(self.collector.store) == 1
        self.sim.run_until(200.0)  # expire task runs every 60s
        assert len(self.collector.store) == 0
        assert self.collector.trace.count("ad-expired") == 1

    def test_job_ads_grouped_and_ordered(self):
        advertise(self.net, "job.b.2", job_ad("bob", 2, qdate=50), sequence=1)
        advertise(self.net, "job.a.1", job_ad("alice", 1, qdate=10), sequence=2)
        advertise(self.net, "job.a.3", job_ad("alice", 3, qdate=5), sequence=3)
        self.sim.run_until(1.0)
        grouped = self.collector.job_ads_by_owner()
        assert set(grouped) == {"alice", "bob"}
        assert [ad.evaluate("JobId") for ad in grouped["alice"]] == [3, 1]

    def test_query(self):
        advertise(self.net, "machine.m0", machine_ad("m0", memory=64))
        advertise(self.net, "machine.m1", machine_ad("m1", memory=16), sequence=2)
        self.sim.run_until(1.0)
        assert len(self.collector.query("Memory >= 32")) == 1

    def test_crash_loses_soft_state(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        self.sim.run_until(1.0)
        self.collector.crash()
        assert len(self.collector.store) == 0
        advertise(self.net, "machine.m0", machine_ad("m0"), sequence=2)
        self.sim.run_until(2.0)
        assert len(self.collector.store) == 0  # still down: message lost
        self.collector.recover()
        advertise(self.net, "machine.m0", machine_ad("m0"), sequence=3)
        self.sim.run_until(3.0)
        assert len(self.collector.store) == 1


class TestNegotiator:
    def setup_method(self):
        self.sim = Simulator()
        self.net = Network(self.sim, rng=RngStream(1), latency=0.01)
        self.trace = Trace()
        self.collector = Collector(self.sim, self.net, trace=self.trace)
        self.accountant = Accountant(half_life=3600.0)
        self.negotiator = Negotiator(
            self.sim,
            self.net,
            self.collector,
            trace=self.trace,
            cycle_interval=300.0,
            accountant=self.accountant,
        )
        self.customer_inbox = []
        self.provider_inbox = []
        self.net.register("schedd@alice", self.customer_inbox.append)
        self.net.register("startd@m0", self.provider_inbox.append)

    def test_cycle_matches_and_notifies_both_parties(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        advertise(self.net, "job.alice.1", job_ad("alice", 1), sequence=2)
        self.sim.run_until(301.0)
        customer_notes = [
            m for m in self.customer_inbox if isinstance(m, MatchNotification)
        ]
        provider_notes = [
            m for m in self.provider_inbox if isinstance(m, MatchNotification)
        ]
        assert len(customer_notes) == 1
        assert len(provider_notes) == 1
        assert customer_notes[0].match_id == provider_notes[0].match_id
        assert customer_notes[0].peer_address == "startd@m0"

    def test_no_requests_no_matches(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        self.sim.run_until(301.0)
        assert self.negotiator.cycles_run == 1
        assert self.negotiator.total_matches == 0

    def test_crashed_negotiator_skips_cycles(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        advertise(self.net, "job.alice.1", job_ad("alice", 1), sequence=2)
        self.negotiator.crash()
        self.sim.run_until(301.0)
        assert self.negotiator.total_matches == 0
        self.negotiator.recover()
        self.sim.run_until(601.0)
        assert self.negotiator.total_matches == 1

    def test_owner_state_machines_never_matched(self):
        advertise(self.net, "machine.m0", machine_ad("m0", state="Owner"))
        advertise(self.net, "job.alice.1", job_ad("alice", 1), sequence=2)
        self.sim.run_until(301.0)
        assert self.negotiator.total_matches == 0

    def test_notification_carries_both_ads(self):
        advertise(self.net, "machine.m0", machine_ad("m0"))
        advertise(self.net, "job.alice.1", job_ad("alice", 1), sequence=2)
        self.sim.run_until(301.0)
        note = self.customer_inbox[0]
        assert note.peer_ad.evaluate("Name") == "m0"
        assert note.my_ad.evaluate("JobId") == 1
