"""Unit tests for machine/job state machines and the job model."""

import pytest

from repro.condor import Job, JobState, MachineState, check_machine_transition, execution_time
from repro.condor.jobs import REFERENCE_MIPS


class TestMachineTransitions:
    @pytest.mark.parametrize(
        "old,new",
        [
            (MachineState.OWNER, MachineState.UNCLAIMED),
            (MachineState.UNCLAIMED, MachineState.OWNER),
            (MachineState.UNCLAIMED, MachineState.CLAIMED),
            (MachineState.CLAIMED, MachineState.OWNER),
            (MachineState.CLAIMED, MachineState.UNCLAIMED),
            (MachineState.CLAIMED, MachineState.CLAIMED),  # preemption
        ],
    )
    def test_legal(self, old, new):
        check_machine_transition(old, new)

    @pytest.mark.parametrize(
        "old,new",
        [
            (MachineState.OWNER, MachineState.CLAIMED),  # must go via UNCLAIMED
            (MachineState.OWNER, MachineState.OWNER),
            (MachineState.UNCLAIMED, MachineState.UNCLAIMED),
        ],
    )
    def test_illegal(self, old, new):
        with pytest.raises(AssertionError):
            check_machine_transition(old, new)


class TestJobModel:
    def test_ids_are_unique(self):
        a, b = Job(owner="x", total_work=1), Job(owner="x", total_work=1)
        assert a.job_id != b.job_id

    def test_remaining_work_tracks_checkpoints(self):
        job = Job(owner="x", total_work=100.0)
        assert job.remaining_work == 100.0
        job.completed_work = 30.0
        assert job.remaining_work == 70.0

    def test_remaining_never_negative(self):
        job = Job(owner="x", total_work=100.0)
        job.completed_work = 150.0
        assert job.remaining_work == 0.0

    def test_wait_and_turnaround(self):
        job = Job(owner="x", total_work=10)
        job.submit_time = 100.0
        assert job.wait_time() is None
        assert job.turnaround() is None
        job.first_start_time = 160.0
        job.completion_time = 300.0
        assert job.wait_time() == 60.0
        assert job.turnaround() == 200.0

    def test_execution_time_scales_with_mips(self):
        job = Job(owner="x", total_work=1000.0)
        assert execution_time(job, REFERENCE_MIPS) == pytest.approx(1000.0)
        assert execution_time(job, 2 * REFERENCE_MIPS) == pytest.approx(500.0)

    def test_execution_time_uses_remaining(self):
        job = Job(owner="x", total_work=1000.0)
        job.completed_work = 500.0
        assert execution_time(job, REFERENCE_MIPS) == pytest.approx(500.0)

    def test_invalid_mips(self):
        with pytest.raises(ValueError):
            execution_time(Job(owner="x", total_work=1), 0)


class TestJobClassAd:
    def test_ad_shape(self):
        job = Job(owner="raman", total_work=500, memory=31)
        job.submit_time = 42.0
        ad = job.to_classad("schedd@beak", now=50.0)
        assert ad.evaluate("Type") == "Job"
        assert ad.evaluate("Owner") == "raman"
        assert ad.evaluate("Memory") == 31
        assert ad.evaluate("ContactAddress") == "schedd@beak"
        assert ad.evaluate("QDate") == 42
        assert ad.evaluate("WantCheckpoint") == 1

    def test_default_constraint_selects_platform(self):
        from repro.classads import is_true
        from repro.condor import MachineSpec
        from repro.condor.machine import MachineAgent  # for ad shape only
        from repro.classads import ClassAd

        job = Job(owner="r", total_work=1, req_arch="SPARC", req_opsys="SOLARIS251", memory=32)
        ad = job.to_classad("s@x", 0.0)
        sparc = ClassAd({"Type": "Machine", "Arch": "SPARC", "OpSys": "SOLARIS251", "Memory": 64})
        intel = ClassAd({"Type": "Machine", "Arch": "INTEL", "OpSys": "SOLARIS251", "Memory": 64})
        assert is_true(ad.evaluate("Constraint", other=sparc))
        assert not is_true(ad.evaluate("Constraint", other=intel))

    def test_memory_requirement(self):
        from repro.classads import ClassAd, is_true

        job = Job(owner="r", total_work=1, memory=128)
        ad = job.to_classad("s@x", 0.0)
        small = ClassAd({"Type": "Machine", "Arch": "INTEL", "OpSys": "SOLARIS251", "Memory": 64})
        assert not is_true(ad.evaluate("Constraint", other=small))

    def test_rank_prefers_fast_machines(self):
        from repro.classads import ClassAd, rank_value

        job = Job(owner="r", total_work=1)
        ad = job.to_classad("s@x", 0.0)
        slow = ClassAd({"KFlops": 1000, "Memory": 64})
        fast = ClassAd({"KFlops": 90000, "Memory": 64})
        assert rank_value(ad.evaluate("Rank", other=fast)) > rank_value(
            ad.evaluate("Rank", other=slow)
        )

    def test_remaining_work_advertised(self):
        job = Job(owner="r", total_work=100.0)
        job.completed_work = 40.0
        ad = job.to_classad("s@x", 0.0)
        assert ad.evaluate("RemainingWork") == pytest.approx(60.0)
