"""Unit tests for the Flock harness (S28)."""

import pytest

from repro.condor import Job, MachineSpec, PoolConfig
from repro.condor.flocking import Flock


class TestFlockConstruction:
    def test_empty_flock_rejected(self):
        with pytest.raises(ValueError):
            Flock({})

    def test_pools_share_one_simulator_and_network(self):
        flock = Flock(
            {
                "a": [MachineSpec(name="a0")],
                "b": [MachineSpec(name="b0")],
            }
        )
        pool_a, pool_b = flock.pools["a"], flock.pools["b"]
        assert pool_a.sim is pool_b.sim is flock.sim
        assert pool_a.net is pool_b.net is flock.net
        assert pool_a.trace is pool_b.trace is flock.trace

    def test_central_managers_have_distinct_addresses(self):
        flock = Flock(
            {
                "a": [MachineSpec(name="a0")],
                "b": [MachineSpec(name="b0")],
            }
        )
        assert flock.pools["a"].collector.address == "collector@a"
        assert flock.pools["b"].collector.address == "collector@b"
        assert flock.pools["a"].negotiator.address != flock.pools["b"].negotiator.address

    def test_flock_collectors_point_at_the_other_pools(self):
        flock = Flock(
            {
                "a": [MachineSpec(name="a0")],
                "b": [MachineSpec(name="b0")],
                "c": [MachineSpec(name="c0")],
            }
        )
        assert sorted(flock.pools["a"].flock_collectors) == [
            "collector@b",
            "collector@c",
        ]

    def test_submit_routes_to_home_pool(self):
        flock = Flock(
            {
                "a": [MachineSpec(name="a0")],
                "b": [MachineSpec(name="b0")],
            }
        )
        job = Job(owner="alice", total_work=100.0)
        flock.submit("a", job)
        assert "alice" in flock.pools["a"].schedds
        assert "alice" not in flock.pools["b"].schedds

    def test_threshold_applied_to_schedds(self):
        flock = Flock(
            {"a": [MachineSpec(name="a0")], "b": [MachineSpec(name="b0")]},
            flock_threshold=123.0,
        )
        flock.submit("a", Job(owner="alice", total_work=1.0))
        assert flock.pools["a"].schedds["alice"].flock_threshold == 123.0

    def test_jobs_and_completed_aggregate_across_pools(self):
        flock = Flock(
            {"a": [MachineSpec(name="a0")], "b": [MachineSpec(name="b0")]},
            PoolConfig(seed=1, advertise_interval=60.0, negotiation_interval=60.0),
        )
        flock.submit("a", Job(owner="alice", total_work=60.0))
        flock.submit("b", Job(owner="bob", total_work=60.0))
        flock.run_until_quiescent(check_interval=60.0, max_time=10_000.0)
        assert len(flock.jobs()) == 2
        assert flock.completed() == 2
