"""Unit tests for the workload/pool generators and owner models (S17, S27)."""

import pytest

from repro.classads import ClassAd, is_true
from repro.condor import (
    FIGURE1_POLICY_CONSTRAINT,
    JobProfile,
    NeverPresentOwner,
    OfficeHoursOwner,
    PoissonOwner,
    PoolProfile,
    generate_jobs,
    generate_policy_pool,
    generate_pool,
    poisson_arrival_times,
)
from repro.sim import RngStream


class TestGeneratePool:
    def test_count_and_names(self):
        specs = generate_pool(RngStream(1), 25)
        assert len(specs) == 25
        assert specs[0].name == "vm0000"
        assert len({s.name for s in specs}) == 25

    def test_platforms_come_from_profile(self):
        profile = PoolProfile(platforms=(("INTEL", "LINUX", 1.0),))
        specs = generate_pool(RngStream(1), 10, profile)
        assert all(s.arch == "INTEL" and s.opsys == "LINUX" for s in specs)

    def test_attribute_ranges_respected(self):
        profile = PoolProfile(mips_range=(100.0, 200.0), disk_range=(10, 20))
        specs = generate_pool(RngStream(2), 50, profile)
        assert all(100.0 <= s.mips <= 200.0 for s in specs)
        assert all(10 <= s.disk <= 20 for s in specs)
        assert all(s.kflops == pytest.approx(s.mips * profile.kflops_per_mips) for s in specs)

    def test_deterministic_given_stream(self):
        a = generate_pool(RngStream(7), 10)
        b = generate_pool(RngStream(7), 10)
        assert [(s.arch, s.memory, s.mips) for s in a] == [
            (s.arch, s.memory, s.mips) for s in b
        ]

    def test_platform_mix_roughly_matches_weights(self):
        specs = generate_pool(RngStream(3), 400)
        intel = sum(1 for s in specs if s.arch == "INTEL")
        # default weights give INTEL 70%; allow generous slack
        assert 0.6 < intel / 400 < 0.8


class TestGeneratePolicyPool:
    def test_policy_attached_round_robin(self):
        specs = generate_policy_pool(
            RngStream(1),
            4,
            groups=[["a1"], ["b1"]],
            friends=["f"],
            untrusted=["u"],
        )
        assert all(s.constraint == FIGURE1_POLICY_CONSTRAINT for s in specs)
        assert specs[0].extra_attrs["ResearchGroup"] == ["a1"]
        assert specs[1].extra_attrs["ResearchGroup"] == ["b1"]
        assert specs[2].extra_attrs["ResearchGroup"] == ["a1"]
        assert all(s.extra_attrs["Friends"] == ["f"] for s in specs)

    def test_generated_policy_actually_discriminates(self):
        spec = generate_policy_pool(
            RngStream(1), 1, groups=[["raman"]], untrusted=["riffraff"]
        )[0]
        machine = ClassAd(
            {
                "Type": "Machine",
                "DayTime": 12 * 3600,
                "KeyboardIdle": 1800,
                "LoadAvg": 0.05,
                **spec.extra_attrs,
            }
        )
        machine.set_expr("Constraint", spec.constraint)
        machine.set_expr("Rank", spec.rank)
        member = ClassAd({"Type": "Job", "Owner": "raman"})
        untrusted = ClassAd({"Type": "Job", "Owner": "riffraff"})
        assert is_true(machine.evaluate("Constraint", other=member))
        assert not is_true(machine.evaluate("Constraint", other=untrusted))


class TestGenerateJobs:
    def test_ownership_and_count(self):
        jobs = generate_jobs(RngStream(1), "raman", 20)
        assert len(jobs) == 20
        assert all(j.owner == "raman" for j in jobs)

    def test_work_floor(self):
        jobs = generate_jobs(RngStream(1), "x", 200, JobProfile(mean_work=30.0))
        assert all(j.total_work >= 60.0 for j in jobs)

    def test_checkpoint_fraction(self):
        always = generate_jobs(
            RngStream(1), "x", 50, JobProfile(want_checkpoint_fraction=1.0)
        )
        never = generate_jobs(
            RngStream(1), "x", 50, JobProfile(want_checkpoint_fraction=0.0)
        )
        assert all(j.want_checkpoint for j in always)
        assert not any(j.want_checkpoint for j in never)


class TestArrivals:
    def test_monotone_and_counted(self):
        times = poisson_arrival_times(RngStream(1), 100, rate=0.01)
        assert len(times) == 100
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_start_offset(self):
        times = poisson_arrival_times(RngStream(1), 10, rate=0.01, start=500.0)
        assert all(t > 500.0 for t in times)

    def test_mean_interarrival_near_rate(self):
        times = poisson_arrival_times(RngStream(2), 2000, rate=0.1)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(10.0, rel=0.15)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(RngStream(1), 1, rate=0.0)


class TestOwnerModels:
    def test_never_present(self):
        model = NeverPresentOwner()
        active, until = model.first_event(RngStream(1))
        assert not active
        assert until == float("inf")

    def test_poisson_phases_positive(self):
        model = PoissonOwner(mean_active=100.0, mean_idle=300.0)
        rng = RngStream(1)
        assert model.active_duration(rng) > 0
        assert model.idle_duration(rng) > 0

    def test_poisson_stationary_start_distribution(self):
        model = PoissonOwner(mean_active=100.0, mean_idle=300.0)
        starts = [model.first_event(RngStream(i))[0] for i in range(400)]
        active_fraction = sum(starts) / len(starts)
        assert active_fraction == pytest.approx(0.25, abs=0.08)

    def test_poisson_invalid_params(self):
        with pytest.raises(ValueError):
            PoissonOwner(mean_active=0.0)

    def test_office_hours_schedule(self):
        model = OfficeHoursOwner(start=9 * 3600, end=17 * 3600, jitter=0.0)
        rng = RngStream(1)
        active, until = model.first_event(rng)
        assert not active
        assert until == 9 * 3600
        assert model.active_duration(rng) == 8 * 3600
        assert model.idle_duration(rng) == 16 * 3600

    def test_office_hours_jitter_is_per_machine_constant(self):
        model = OfficeHoursOwner(jitter=1800.0)
        rng = RngStream(5)
        first = model.active_duration(rng)
        second = model.active_duration(rng)
        assert first == second  # jitter drawn once, then frozen

    def test_office_hours_validation(self):
        with pytest.raises(ValueError):
            OfficeHoursOwner(start=17 * 3600, end=9 * 3600)
