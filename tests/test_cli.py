"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import CliError, load_ad, load_pool, main
from repro.classads import ClassAd, dumps

MACHINE_SRC = """[
  Type = "Machine"; Name = "leonardo"; Arch = "INTEL";
  OpSys = "SOLARIS251"; Memory = 64; KFlops = 21893;
  State = "Unclaimed"; Activity = "Idle"; LoadAvg = 0.05; KeyboardIdle = 1432;
  Constraint = other.Type == "Job"
]"""

JOB_SRC = """[
  Type = "Job"; JobId = 7; Owner = "raman"; Cmd = "run_sim"; Memory = 31;
  ReqArch = "INTEL"; RemainingWork = 600.0;
  Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
  Rank = other.KFlops / 1E3
]"""


@pytest.fixture()
def machine_file(tmp_path):
    path = tmp_path / "machine.ad"
    path.write_text(MACHINE_SRC)
    return str(path)


@pytest.fixture()
def job_file(tmp_path):
    path = tmp_path / "job.ad"
    path.write_text(JOB_SRC)
    return str(path)


@pytest.fixture()
def pool_file(tmp_path):
    ads = []
    for i, memory in enumerate([16, 64, 256]):
        ad = ClassAd.parse(MACHINE_SRC)
        ad["Name"] = f"m{i}"
        ad["Memory"] = memory
        ads.append(ad)
    path = tmp_path / "pool.jsonl"
    path.write_text("\n".join(dumps(ad) for ad in ads))
    return str(path)


class TestLoading:
    def test_load_classad_source(self, machine_file):
        ad = load_ad(machine_file)
        assert ad.evaluate("Name") == "leonardo"

    def test_load_json_ad(self, tmp_path):
        ad = ClassAd.parse(MACHINE_SRC)
        path = tmp_path / "machine.json"
        path.write_text(dumps(ad))
        assert load_ad(str(path)) == ad

    def test_load_jsonl_pool(self, pool_file):
        pool = load_pool(pool_file)
        assert len(pool) == 3

    def test_load_json_array_pool(self, tmp_path):
        ads = [ClassAd({"Type": "Machine", "Name": f"m{i}"}) for i in range(2)]
        path = tmp_path / "pool.json"
        path.write_text(json.dumps([{"Type": "Machine", "Name": f"m{i}"} for i in range(2)]))
        assert len(load_pool(str(path))) == 2

    def test_load_concatenated_classad_blocks(self, tmp_path):
        path = tmp_path / "pool.ads"
        path.write_text(MACHINE_SRC + "\n\n" + MACHINE_SRC.replace("leonardo", "raphael"))
        pool = load_pool(str(path))
        assert [ad.evaluate("Name") for ad in pool] == ["leonardo", "raphael"]

    def test_brackets_inside_strings_do_not_confuse_splitter(self, tmp_path):
        path = tmp_path / "pool.ads"
        path.write_text('[ Type = "Machine"; Note = "odd ] text [" ]')
        assert len(load_pool(str(path))) == 1

    def test_missing_file(self):
        with pytest.raises(CliError):
            load_ad("/nonexistent/file.ad")

    def test_malformed_source(self, tmp_path):
        path = tmp_path / "bad.ad"
        path.write_text("[ a = ]")
        with pytest.raises(CliError):
            load_ad(str(path))


class TestCommands:
    def test_eval_simple(self, capsys):
        assert main(["eval", "2 + 3 * 4"]) == 0
        assert capsys.readouterr().out.strip() == "14"

    def test_eval_with_ads(self, capsys, machine_file, job_file):
        code = main(["eval", "other.Memory >= self.Memory", "--ad", job_file, "--other", machine_file])
        assert code == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_eval_undefined(self, capsys):
        main(["eval", "NoSuchThing"])
        assert capsys.readouterr().out.strip() == "undefined"

    def test_eval_bad_expression(self, capsys):
        assert main(["eval", "a +"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_match_yes(self, capsys, machine_file, job_file):
        assert main(["match", job_file, machine_file]) == 0
        out = capsys.readouterr().out
        assert "match: yes" in out
        assert "customer Rank of provider: 21.893" in out

    def test_match_no(self, capsys, tmp_path, machine_file):
        small = tmp_path / "big_job.ad"
        small.write_text(JOB_SRC.replace("Memory = 31", "Memory = 4096"))
        assert main(["match", str(small), machine_file]) == 1
        assert "match: no" in capsys.readouterr().out

    def test_best(self, capsys, job_file, pool_file):
        assert main(["best", job_file, pool_file]) == 0
        out = capsys.readouterr().out
        assert "best provider:" in out

    def test_best_none(self, capsys, tmp_path, pool_file):
        impossible = tmp_path / "impossible.ad"
        impossible.write_text(JOB_SRC.replace("Memory = 31", "Memory = 99999"))
        assert main(["best", str(impossible), pool_file]) == 1

    def test_status(self, capsys, pool_file):
        assert main(["status", pool_file]) == 0
        out = capsys.readouterr().out
        assert "Total 3 machines" in out

    def test_status_with_constraint(self, capsys, pool_file):
        main(["status", pool_file, "--constraint", "Memory >= 64"])
        out = capsys.readouterr().out
        assert "Total 2 machines" in out

    def test_q(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.ads"
        jobs.write_text(JOB_SRC)
        main(["q", str(jobs)])
        assert "raman" in capsys.readouterr().out

    def test_q_owner_filter(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.ads"
        jobs.write_text(JOB_SRC)
        main(["q", str(jobs), "--owner", "nobody"])
        assert "no idle jobs" in capsys.readouterr().out

    def test_diagnose_satisfiable(self, capsys, job_file, pool_file):
        assert main(["diagnose", job_file, pool_file]) == 0
        assert "bilateral matches" in capsys.readouterr().out

    def test_diagnose_unsatisfiable(self, capsys, tmp_path, pool_file):
        bad = tmp_path / "bad_job.ad"
        bad.write_text(JOB_SRC.replace('"INTEL"', '"VAX"').replace(
            'other.Memory >= self.Memory',
            'other.Arch == "VAX"',
        ))
        assert main(["diagnose", str(bad), pool_file]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_convert_to_json_and_back(self, capsys, machine_file, tmp_path):
        main(["convert", machine_file, "--to", "json"])
        as_json = capsys.readouterr().out
        json_path = tmp_path / "machine.json"
        json_path.write_text(as_json)
        main(["convert", str(json_path), "--to", "classad"])
        as_classad = capsys.readouterr().out
        assert ClassAd.parse(as_classad) == load_ad(machine_file)


class TestValueFormatting:
    def test_eval_list_result(self, capsys):
        main(["eval", 'split("a b c")'])
        assert capsys.readouterr().out.strip() == '{ "a", "b", "c" }'

    def test_eval_record_result(self, capsys):
        main(["eval", "[x = 1 + 1]"])
        out = capsys.readouterr().out.strip()
        assert out.startswith("[") and "x" in out

    def test_eval_error_result(self, capsys):
        main(["eval", "1/0"])
        assert capsys.readouterr().out.strip() == "error"

    def test_eval_real_result(self, capsys):
        main(["eval", "7 / 2.0"])
        assert capsys.readouterr().out.strip() == "3.5"


OBS_POOL_SRC = """[
  Type = "Machine"; Name = "vulture"; Arch = "INTEL"; Memory = 64;
  State = "Unclaimed"; Constraint = other.Type == "Job"; Rank = 0
]
[
  Type = "Machine"; Name = "condor"; Arch = "SPARC"; Memory = 128;
  State = "Unclaimed"; Constraint = other.Type == "Job"; Rank = 0
]
[
  Type = "Job"; JobId = 1; Owner = "raman"; QDate = 1;
  Constraint = other.Type == "Machine" && other.Arch == "INTEL";
  Rank = other.Memory
]
[
  Type = "Job"; JobId = 2; Owner = "raman"; QDate = 2;
  Constraint = other.Type == "Machine" && other.Arch == "VAX" && other.Memory >= 32;
  Rank = 0
]
[
  Type = "Job"; JobId = 3; Owner = "livny"; QDate = 3;
  Constraint = other.Type == "Machine" && other.HasJava;
  Rank = 0
]"""


class TestObsCommands:
    """The negotiation-forensics CLI: record → report/why/tail/export."""

    @pytest.fixture()
    def events_file(self, tmp_path, capsys):
        pool = tmp_path / "obspool.ads"
        pool.write_text(OBS_POOL_SRC)
        out = str(tmp_path / "events.jsonl")
        assert main(["obs", "record", str(pool), "--out", out, "--cycles", "2"]) == 0
        capsys.readouterr()  # swallow the record confirmation line
        return out

    def test_record_writes_valid_jsonl(self, events_file):
        from repro.obs.events import read_jsonl

        events = read_jsonl(events_file)
        assert any(e.kind == "cycle.end" for e in events)
        assert any(e.kind == "match.reject" for e in events)

    def test_report_summarizes_cycles(self, capsys, events_file):
        assert main(["obs", "report", events_file]) == 0
        out = capsys.readouterr().out
        assert "cycle  requests  matched  rejected" in out
        assert "top rejection reasons:" in out
        assert 'other.Arch == "VAX"' in out

    def test_why_names_failing_conjunct(self, capsys, events_file):
        # Job 2 is genuinely unmatchable: no VAX in the pool.
        assert main(["obs", "why", "2", events_file]) == 1
        out = capsys.readouterr().out
        assert 'conjunct other.Arch == "VAX" is false' in out
        assert "unmatched in every recorded cycle" in out

    def test_why_names_undefined_attribute(self, capsys, events_file):
        # Job 3 wants other.HasJava, which no machine ad defines.
        assert main(["obs", "why", "3", events_file]) == 1
        out = capsys.readouterr().out
        assert "conjunct other.HasJava is undefined" in out
        assert "undefined attributes: other.HasJava" in out

    def test_why_reports_match(self, capsys, events_file):
        assert main(["obs", "why", "1", events_file]) == 0
        out = capsys.readouterr().out
        assert "matched provider vulture" in out

    def test_why_unknown_job(self, capsys, events_file):
        assert main(["obs", "why", "99", events_file]) == 1
        assert "no recorded events" in capsys.readouterr().out

    def test_tail_prints_events(self, capsys, events_file):
        assert main(["obs", "tail", events_file, "--limit", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert "cycle.end" in out[-1]

    def test_tail_kind_filter(self, capsys, events_file):
        assert main(["obs", "tail", events_file, "--kind", "cycle.begin"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all("cycle.begin" in line for line in lines)

    def test_export_summary_schema(self, capsys, events_file):
        assert main(["obs", "export", events_file]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == "repro-events-summary/1"
        assert len(summary["cycles"]) == 2
        assert summary["by_kind"]["match.reject"] > 0

    def test_export_to_file(self, capsys, events_file, tmp_path):
        out = str(tmp_path / "summary.json")
        assert main(["obs", "export", events_file, "--out", out]) == 0
        summary = json.loads(open(out).read())
        assert summary["schema"] == "repro-events-summary/1"

    def test_report_rejects_bad_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a header"}\n')
        assert main(["obs", "report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_record_requires_jobs(self, capsys, tmp_path, pool_file):
        out = str(tmp_path / "events.jsonl")
        assert main(["obs", "record", pool_file, "--out", out]) == 2
        assert "no Job ads" in capsys.readouterr().err


class TestPoolFormats:
    def test_empty_pool_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_pool(str(path)) == []

    def test_unbalanced_brackets_rejected(self, tmp_path):
        path = tmp_path / "broken.ads"
        path.write_text("[ a = 1 ")
        with pytest.raises(CliError):
            load_pool(str(path))

    def test_json_pool_must_be_array(self, tmp_path):
        path = tmp_path / "scalar.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(Exception):
            load_pool(str(path))


class TestObsCheck:
    def write_log(self, tmp_path, records):
        path = tmp_path / "events.jsonl"
        lines = ['{"schema": "repro-events/1"}']
        lines += [json.dumps(r) for r in records]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_clean_log_passes(self, capsys, tmp_path):
        path = self.write_log(
            tmp_path,
            [
                {"seq": 1, "t": 0.0, "kind": "job-submitted",
                 "fields": {"owner": "a", "job": 1}},
                {"seq": 2, "t": 1.0, "kind": "claim-response",
                 "fields": {"machine": "m0", "accepted": True, "match": 1, "job": 1}},
                {"seq": 3, "t": 1.0, "kind": "claim-accepted",
                 "fields": {"owner": "a", "job": 1, "match": 1}},
                {"seq": 4, "t": 9.0, "kind": "job-completed",
                 "fields": {"machine": "m0", "job": 1}},
                {"seq": 5, "t": 9.1, "kind": "job-done",
                 "fields": {"owner": "a", "job": 1}},
            ],
        )
        assert main(["obs", "check", path, "--require-complete"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_overlap_fails(self, capsys, tmp_path):
        path = self.write_log(
            tmp_path,
            [
                {"seq": 1, "t": 1.0, "kind": "claim-response",
                 "fields": {"machine": "m0", "accepted": True, "match": 1, "job": 1}},
                {"seq": 2, "t": 2.0, "kind": "claim-response",
                 "fields": {"machine": "m0", "accepted": True, "match": 2, "job": 2}},
            ],
        )
        assert main(["obs", "check", path]) == 1
        assert "machine-overlap" in capsys.readouterr().out

    def test_incomplete_only_fails_with_require_complete(self, capsys, tmp_path):
        path = self.write_log(
            tmp_path,
            [{"seq": 1, "t": 0.0, "kind": "job-submitted",
              "fields": {"owner": "a", "job": 1}}],
        )
        assert main(["obs", "check", path]) == 0
        assert main(["obs", "check", path, "--require-complete"]) == 1

    def test_bad_file_is_cli_error(self, capsys, tmp_path):
        bad = tmp_path / "nope.jsonl"
        bad.write_text("not json\n")
        assert main(["obs", "check", str(bad)]) == 2


class TestChaosCommand:
    def test_chaos_run_records_and_passes_check(self, capsys, tmp_path):
        out = str(tmp_path / "chaos.jsonl")
        code = main(
            ["chaos", "lossy", "--machines", "3", "--jobs", "4",
             "--horizon", "1200", "--out", out]
        )
        stdout = capsys.readouterr().out
        assert code == 0, stdout
        assert "4/4 completed" in stdout
        assert main(["obs", "check", out, "--require-complete"]) == 0

    def test_unknown_profile_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["chaos", "mayhem"])


class TestLifecycleCommands:
    """The lifecycle-analytics CLI: timeline / critical-path / latency / pool."""

    LIFECYCLE_RECORDS = [
        {"seq": 1, "t": 0.0, "kind": "job-submitted",
         "fields": {"owner": "alice", "job": 0, "trace": "job.alice.0"}},
        {"seq": 2, "t": 0.0, "kind": "advertise-job",
         "fields": {"owner": "alice", "job": 0}},
        {"seq": 3, "t": 60.0, "kind": "match-notified-customer",
         "fields": {"owner": "alice", "job": 0, "match": 1}},
        {"seq": 4, "t": 60.1, "kind": "claim-request",
         "fields": {"owner": "alice", "job": 0, "match": 1}},
        {"seq": 5, "t": 60.2, "kind": "claim-response",
         "fields": {"machine": "m0", "accepted": True, "match": 1, "job": 0}},
        {"seq": 6, "t": 60.3, "kind": "claim-accepted",
         "fields": {"owner": "alice", "job": 0, "match": 1}},
        {"seq": 7, "t": 660.3, "kind": "job-done",
         "fields": {"owner": "alice", "job": 0}},
    ]

    TRACE_RECORDS = [
        {"span": 1, "t": 0.0, "trace": "job.alice.0", "name": "job.submit",
         "parent": None, "fields": {"owner": "alice", "job": 0}},
        {"span": 2, "t": 0.0, "trace": "job.alice.0", "name": "send.Advertisement",
         "parent": 1, "fields": {}},
        {"span": 3, "t": 8.0, "trace": "job.alice.0", "name": "recv.Advertisement",
         "parent": 2, "fields": {}},
    ]

    SERIES_RECORDS = [
        {"seq": 1, "t": 60.0,
         "fields": {"cycle": 1, "machines": 3, "claimed": 1, "match_rate": 0.5}},
        {"seq": 2, "t": 120.0,
         "fields": {"cycle": 2, "machines": 3, "claimed": 2, "match_rate": 1.0}},
    ]

    def write_jsonl(self, tmp_path, name, schema, records):
        path = tmp_path / name
        lines = [json.dumps({"schema": schema})] + [json.dumps(r) for r in records]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    @pytest.fixture()
    def events_file(self, tmp_path):
        return self.write_jsonl(
            tmp_path, "events.jsonl", "repro-events/1", self.LIFECYCLE_RECORDS
        )

    @pytest.fixture()
    def trace_file(self, tmp_path):
        return self.write_jsonl(
            tmp_path, "trace.jsonl", "repro-trace/1", self.TRACE_RECORDS
        )

    @pytest.fixture()
    def series_file(self, tmp_path):
        return self.write_jsonl(
            tmp_path, "series.jsonl", "repro-series/1", self.SERIES_RECORDS
        )

    def test_timeline_renders_phases(self, capsys, events_file):
        assert main(["obs", "timeline", "0", events_file]) == 0
        out = capsys.readouterr().out
        assert "job 0 (alice)" in out
        assert "executing" in out
        assert "end-to-end 660.300" in out

    def test_timeline_owner_qualified(self, capsys, events_file):
        assert main(["obs", "timeline", "alice.0", events_file]) == 0
        assert "trace job.alice.0" in capsys.readouterr().out

    def test_timeline_unknown_job(self, capsys, events_file):
        assert main(["obs", "timeline", "42", events_file]) == 2
        assert "recorded jobs: alice.0" in capsys.readouterr().err

    def test_critical_path_walks_spans(self, capsys, trace_file):
        assert main(["obs", "critical-path", "alice.0", trace_file]) == 0
        out = capsys.readouterr().out
        assert out.index("job.submit") < out.index("recv.Advertisement")
        assert "root→leaf" in out

    def test_critical_path_unknown_trace(self, capsys, trace_file):
        assert main(["obs", "critical-path", "bob.9", trace_file]) == 2
        assert "job.alice.0" in capsys.readouterr().err

    def test_latency_table(self, capsys, events_file):
        assert main(["obs", "latency", events_file]) == 0
        out = capsys.readouterr().out
        assert "end-to-end" in out
        assert "p99" in out

    def test_latency_json(self, capsys, events_file):
        assert main(["obs", "latency", events_file, "--json"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert table["schema"] == "repro-latency/1"
        assert table["jobs_completed"] == 1

    def test_pool_table(self, capsys, series_file):
        assert main(["obs", "pool", series_file]) == 0
        out = capsys.readouterr().out
        assert "match_rate" in out
        assert "0.50" in out

    def test_pool_limit(self, capsys, series_file):
        assert main(["obs", "pool", series_file, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "0.50" not in out
        assert "1.00" in out

    def test_report_section_filter(self, capsys, events_file):
        assert main(["obs", "report", events_file, "--section", "kinds"]) == 0
        out = capsys.readouterr().out
        assert "events by kind" in out
        assert "cycle  requests" not in out


class TestChaosRecordingFlags:
    def test_chaos_records_trace_and_series(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        series = str(tmp_path / "series.jsonl")
        code = main(
            ["chaos", "lossy", "--machines", "3", "--jobs", "4",
             "--horizon", "1200", "--trace", trace, "--series", series]
        )
        assert code == 0, capsys.readouterr().out
        from repro.obs.causal import check_dag
        from repro.obs.causal import read_jsonl as read_trace
        from repro.obs.timeseries import read_jsonl as read_series

        spans = read_trace(trace)
        assert check_dag(spans)  # connected, rooted — raises otherwise
        assert read_series(series)

    def test_chaos_emits_run_stats_for_report(self, capsys, tmp_path):
        out = str(tmp_path / "events.jsonl")
        assert main(
            ["chaos", "lossy", "--machines", "3", "--jobs", "4",
             "--horizon", "1200", "--out", out]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "report", out, "--section", "robustness"]) == 0
        report = capsys.readouterr().out
        assert "robustness" in report
        assert "delivered" in report
        assert "retries_sent" in report
